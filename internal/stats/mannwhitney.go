package stats

import (
	"math"
	"sort"
)

// MannWhitneyResult holds the outcome of a Mann–Whitney U test.
type MannWhitneyResult struct {
	U float64 // the U statistic for the first sample
	Z float64 // normal-approximation test statistic (tie-corrected)
	P float64 // two-sided p-value
}

// MannWhitneyU performs the two-sided Mann–Whitney U test (Wilcoxon rank-sum)
// on two independent samples, using the normal approximation with tie
// correction and continuity correction. This is the similarity metric the
// paper uses to decide whether two regions have comparable income
// distributions: a large p-value means the samples are statistically
// indistinguishable.
//
// When either sample is empty the result has P = NaN; callers treat such
// pairs as non-comparable.
//
// MannWhitneyU sorts copies of both samples and delegates to
// MannWhitneyUSorted; a caller that tests one sample against many others
// should sort each sample once and call MannWhitneyUSorted directly (the
// audit engine's PreparedMetric path does exactly this).
func MannWhitneyU(xs, ys []float64) MannWhitneyResult {
	if len(xs) == 0 || len(ys) == 0 {
		return MannWhitneyResult{U: math.NaN(), Z: math.NaN(), P: math.NaN()}
	}
	a := append([]float64(nil), xs...)
	b := append([]float64(nil), ys...)
	sort.Float64s(a)
	sort.Float64s(b)
	return MannWhitneyUSorted(a, b)
}

// MannWhitneyUSorted is MannWhitneyU for samples already sorted ascending.
// It merges the two sorted samples with two cursors — O(n1+n2) time, zero
// allocations — assigning mid-ranks to ties across the union exactly as the
// combined-sort implementation did, so results are bit-identical to
// MannWhitneyU on the same data (rank sums and tie terms are sums and
// products of exactly-representable multiples of one half, so neither
// accumulation order nor multiply-versus-repeated-add changes a bit).
//
// Inputs that are not sorted ascending yield unspecified results.
func MannWhitneyUSorted(xs, ys []float64) MannWhitneyResult {
	n1, n2 := len(xs), len(ys)
	if n1 == 0 || n2 == 0 {
		return MannWhitneyResult{U: math.NaN(), Z: math.NaN(), P: math.NaN()}
	}

	// Walk both samples in lockstep, grouping ties across the union and
	// accumulating the first sample's rank sum plus the tie-correction term
	// sum(t^3 - t).
	var rankSum1, tieTerm float64
	i, j, consumed := 0, 0, 0
	for i < n1 || j < n2 {
		var v float64
		switch {
		case i >= n1:
			v = ys[j]
		case j >= n2:
			v = xs[i]
		case xs[i] <= ys[j]:
			v = xs[i]
		default:
			v = ys[j]
		}
		cx, cy := 0, 0
		for i < n1 && xs[i] == v { //lint:floateq-ok exact-tie-grouping
			i++
			cx++
		}
		for j < n2 && ys[j] == v { //lint:floateq-ok exact-tie-grouping
			j++
			cy++
		}
		t := cx + cy
		midRank := float64(2*consumed+t+1) / 2 // ranks are 1-based
		rankSum1 += float64(cx) * midRank
		if t > 1 {
			ft := float64(t)
			tieTerm += ft*ft*ft - ft
		}
		consumed += t
	}
	return mannWhitneyFromRankSum(rankSum1, tieTerm, n1, n2)
}

// MannWhitneySeparatedP returns the two-sided Mann–Whitney p-value for two
// completely separated samples of the given sizes: every observation of the
// first sample below every observation of the second, no cross-sample ties.
// It is the smallest p the test can produce at these sizes assuming no ties,
// and an upper bound on the p-value of ANY pair of samples with disjoint
// value ranges — internal ties only shrink the variance and push p lower, and
// cross-sample ties are impossible when the ranges are disjoint. The audit
// engine's conservative Mann–Whitney bound rejects a range-disjoint pair
// exactly when this upper bound is already below the similarity threshold.
// Empty samples give NaN, matching MannWhitneyU.
func MannWhitneySeparatedP(n1, n2 int) float64 {
	if n1 == 0 || n2 == 0 {
		return math.NaN()
	}
	rankSum1 := float64(n1) * float64(n1+1) / 2 // first sample occupies ranks 1..n1
	return mannWhitneyFromRankSum(rankSum1, 0, n1, n2).P
}

// MannWhitneyUSortedNoTies is the no-ties specialization of
// MannWhitneyUSorted: a branch-light single-advance merge for samples that
// are each strictly increasing. The caller must guarantee neither sample
// contains a duplicate value (within-sample ties change the tie-correction
// term and are NOT detected here); cross-sample ties ARE detected, and the
// function returns ok=false — with an unspecified result — so the caller can
// fall back to the general tie-aware kernel. When ok is true the result is
// bit-identical to MannWhitneyUSorted on the same data: with no ties anywhere
// the rank sum is the exact integer n1(n1+1)/2 + #{x > y}, which the general
// kernel accumulates in exact float64 steps with a zero tie term.
//
// Empty samples return the NaN result with ok=true, matching
// MannWhitneyUSorted.
//
//lint:hotpath
func MannWhitneyUSortedNoTies(xs, ys []float64) (res MannWhitneyResult, ok bool) {
	n1, n2 := len(xs), len(ys)
	if n1 == 0 || n2 == 0 {
		return MannWhitneyResult{U: math.NaN(), Z: math.NaN(), P: math.NaN()}, true
	}
	// cross counts #{(x, y) : x > y}. Each consumed y sees all still-pending
	// xs above it; the branchless advance keeps the loop's only data-dependent
	// branch the rare cross-tie check.
	cross := 0
	i, j := 0, 0
	for i < n1 && j < n2 {
		x, y := xs[i], ys[j]
		if x == y { //lint:floateq-ok cross-tie-detection
			return MannWhitneyResult{}, false
		}
		yl := 0
		if y < x {
			yl = 1
		}
		cross += yl * (n1 - i)
		j += yl
		i += 1 - yl
	}
	return MannWhitneyFromCross(cross, n1, n2), true
}

// mannWhitneyFromRankSum finishes the test from the first sample's rank sum
// and the tie-correction term: the U statistic, the tie-corrected normal
// approximation with continuity correction, and the two-sided p-value.
func mannWhitneyFromRankSum(rankSum1, tieTerm float64, n1, n2 int) MannWhitneyResult {
	u1, z, degenerate := mannWhitneyZFromRankSum(rankSum1, tieTerm, n1, n2)
	if degenerate {
		// All observations tied: the samples are indistinguishable.
		return MannWhitneyResult{U: u1, Z: 0, P: 1}
	}
	return MannWhitneyResult{U: u1, Z: z, P: TwoSidedP(z)}
}

// mannWhitneyZFromRankSum is the statistic half of mannWhitneyFromRankSum:
// the U statistic and the tie- and continuity-corrected z, without the erfc.
// Sharing this helper is what keeps MannWhitneyZNoTies bit-identical to the
// full test's Z — both run the exact same float operations in the same order.
func mannWhitneyZFromRankSum(rankSum1, tieTerm float64, n1, n2 int) (u1, z float64, degenerate bool) {
	fn1, fn2 := float64(n1), float64(n2)
	u1 = rankSum1 - fn1*(fn1+1)/2
	mu := fn1 * fn2 / 2
	n := fn1 + fn2
	sigma2 := fn1 * fn2 / 12 * ((n + 1) - tieTerm/(n*(n-1)))
	if sigma2 <= 0 {
		return u1, 0, true
	}
	// Continuity correction toward the mean.
	diff := u1 - mu
	switch {
	case diff > 0.5:
		diff -= 0.5
	case diff < -0.5:
		diff += 0.5
	default:
		diff = 0
	}
	return u1, diff / math.Sqrt(sigma2), false
}

// MannWhitneyZNoTies returns MannWhitneyFromCross(cross, n1, n2).Z without
// computing the p-value — the statistic alone, bit-identical to the full
// test's Z (both call mannWhitneyZFromRankSum on the same inputs). The audit's
// fast similarity gate maps cross-count bounds into |z| space with it and
// decides most pairs against a verified critical band, skipping both the
// exact cross count and the erfc. Empty samples return NaN, matching
// MannWhitneyFromCross.
//
//lint:hotpath
func MannWhitneyZNoTies(cross, n1, n2 int) float64 {
	if n1 == 0 || n2 == 0 {
		return math.NaN()
	}
	rankSum1 := float64(n1)*float64(n1+1)/2 + float64(cross)
	_, z, degenerate := mannWhitneyZFromRankSum(rankSum1, 0, n1, n2)
	if degenerate {
		return 0
	}
	return z
}
