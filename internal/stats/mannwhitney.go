package stats

import (
	"math"
	"sort"
)

// MannWhitneyResult holds the outcome of a Mann–Whitney U test.
type MannWhitneyResult struct {
	U float64 // the U statistic for the first sample
	Z float64 // normal-approximation test statistic (tie-corrected)
	P float64 // two-sided p-value
}

// MannWhitneyU performs the two-sided Mann–Whitney U test (Wilcoxon rank-sum)
// on two independent samples, using the normal approximation with tie
// correction and continuity correction. This is the similarity metric the
// paper uses to decide whether two regions have comparable income
// distributions: a large p-value means the samples are statistically
// indistinguishable.
//
// When either sample is empty the result has P = NaN; callers treat such
// pairs as non-comparable.
func MannWhitneyU(xs, ys []float64) MannWhitneyResult {
	n1, n2 := len(xs), len(ys)
	if n1 == 0 || n2 == 0 {
		return MannWhitneyResult{U: math.NaN(), Z: math.NaN(), P: math.NaN()}
	}

	type obs struct {
		v     float64
		first bool
	}
	all := make([]obs, 0, n1+n2)
	for _, x := range xs {
		all = append(all, obs{v: x, first: true})
	}
	for _, y := range ys {
		all = append(all, obs{v: y})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Assign mid-ranks to ties and accumulate the tie-correction term
	// sum(t^3 - t).
	var rankSum1, tieTerm float64
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v { //lint:floateq-ok exact-tie-grouping
			j++
		}
		t := float64(j - i)
		midRank := float64(i+j+1) / 2 // ranks are 1-based
		for k := i; k < j; k++ {
			if all[k].first {
				rankSum1 += midRank
			}
		}
		if t > 1 {
			tieTerm += t*t*t - t
		}
		i = j
	}

	fn1, fn2 := float64(n1), float64(n2)
	u1 := rankSum1 - fn1*(fn1+1)/2
	mu := fn1 * fn2 / 2
	n := fn1 + fn2
	sigma2 := fn1 * fn2 / 12 * ((n + 1) - tieTerm/(n*(n-1)))
	if sigma2 <= 0 {
		// All observations tied: the samples are indistinguishable.
		return MannWhitneyResult{U: u1, Z: 0, P: 1}
	}
	// Continuity correction toward the mean.
	diff := u1 - mu
	switch {
	case diff > 0.5:
		diff -= 0.5
	case diff < -0.5:
		diff += 0.5
	default:
		diff = 0
	}
	z := diff / math.Sqrt(sigma2)
	return MannWhitneyResult{U: u1, Z: z, P: TwoSidedP(z)}
}
