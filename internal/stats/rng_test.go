package stats

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint32() != b.Uint32() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := NewRNG(8)
	same := 0
	a.Seed(7)
	for i := 0; i < 1000; i++ {
		if a.Uint32() == c.Uint32() {
			same++
		}
	}
	if same > 10 {
		t.Errorf("different seeds produced %d/1000 equal draws", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestRNGFloat64MeanVariance(t *testing.T) {
	r := NewRNG(2)
	n := 100000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Float64()
	}
	if m := Mean(xs); math.Abs(m-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ~0.5", m)
	}
	if v := Variance(xs); math.Abs(v-1.0/12) > 0.005 {
		t.Errorf("uniform variance = %v, want ~0.0833", v)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(3)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("Intn bucket %d count %d, want ~10000", i, c)
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGNormFloat64Moments(t *testing.T) {
	r := NewRNG(4)
	n := 200000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	if m := Mean(xs); math.Abs(m) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", m)
	}
	if v := Variance(xs); math.Abs(v-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", v)
	}
}

func TestRNGBinomialEdgeCases(t *testing.T) {
	r := NewRNG(5)
	if got := r.Binomial(0, 0.5); got != 0 {
		t.Errorf("Binomial(0, .5) = %d", got)
	}
	if got := r.Binomial(10, 0); got != 0 {
		t.Errorf("Binomial(10, 0) = %d", got)
	}
	if got := r.Binomial(10, 1); got != 10 {
		t.Errorf("Binomial(10, 1) = %d", got)
	}
	if got := r.Binomial(-5, 0.5); got != 0 {
		t.Errorf("Binomial(-5, .5) = %d", got)
	}
}

func TestRNGBinomialMoments(t *testing.T) {
	r := NewRNG(6)
	// Exercise both the exact (small n) and approximate (large n) paths.
	for _, tc := range []struct {
		n int
		p float64
	}{{20, 0.3}, {50, 0.62}, {5000, 0.62}, {100000, 0.1}, {3000, 0.9}} {
		draws := 3000
		xs := make([]float64, draws)
		for i := range xs {
			k := r.Binomial(tc.n, tc.p)
			if k < 0 || k > tc.n {
				t.Fatalf("Binomial(%d,%v) = %d out of range", tc.n, tc.p, k)
			}
			xs[i] = float64(k)
		}
		wantMean := float64(tc.n) * tc.p
		wantSD := math.Sqrt(wantMean * (1 - tc.p))
		m := Mean(xs)
		if math.Abs(m-wantMean) > 5*wantSD/math.Sqrt(float64(draws)) {
			t.Errorf("Binomial(%d,%v) mean = %v, want ~%v", tc.n, tc.p, m, wantMean)
		}
		sd := StdDev(xs)
		if math.Abs(sd-wantSD) > 0.1*wantSD+0.5 {
			t.Errorf("Binomial(%d,%v) sd = %v, want ~%v", tc.n, tc.p, sd, wantSD)
		}
	}
}

func TestRNGShufflePermutes(t *testing.T) {
	r := NewRNG(7)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, x := range xs {
		seen[x] = true
	}
	if len(seen) != 10 {
		t.Errorf("shuffle lost elements: %v", xs)
	}
}

func TestRNGExpPositiveMean(t *testing.T) {
	r := NewRNG(8)
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = r.Exp()
		if xs[i] < 0 {
			t.Fatalf("Exp() = %v < 0", xs[i])
		}
	}
	if m := Mean(xs); math.Abs(m-1) > 0.03 {
		t.Errorf("Exp mean = %v, want ~1", m)
	}
}

func TestRNGSplitIndependentAndDeterministic(t *testing.T) {
	// Same parent seed and split order must reproduce the same child streams.
	a, b := NewRNG(42), NewRNG(42)
	ca1, ca2 := a.Split(), a.Split()
	cb1, cb2 := b.Split(), b.Split()
	for i := 0; i < 100; i++ {
		if ca1.Uint64() != cb1.Uint64() || ca2.Uint64() != cb2.Uint64() {
			t.Fatal("Split is not deterministic in (seed, split order)")
		}
	}

	// Sibling streams and the advanced parent must not mirror one another.
	parent := NewRNG(42)
	c1, c2 := parent.Split(), parent.Split()
	same12, sameP1 := 0, 0
	for i := 0; i < 1000; i++ {
		v1, v2, vp := c1.Uint32(), c2.Uint32(), parent.Uint32()
		if v1 == v2 {
			same12++
		}
		if v1 == vp {
			sameP1++
		}
	}
	if same12 > 2 || sameP1 > 2 {
		t.Errorf("split streams correlate: %d/%d collisions", same12, sameP1)
	}
}
