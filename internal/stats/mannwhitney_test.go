package stats

import (
	"math"
	"testing"
)

func TestMannWhitneyIdenticalSamples(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	res := MannWhitneyU(xs, xs)
	if res.P < 0.9 {
		t.Errorf("identical samples p = %v, want ~1", res.P)
	}
	if res.Z != 0 {
		t.Errorf("identical samples z = %v, want 0", res.Z)
	}
}

func TestMannWhitneyDisjointSamples(t *testing.T) {
	xs := make([]float64, 50)
	ys := make([]float64, 50)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = float64(i) + 1000
	}
	res := MannWhitneyU(xs, ys)
	if res.P > 1e-10 {
		t.Errorf("disjoint samples p = %v, want ~0", res.P)
	}
	// U for the first sample should be 0: every x ranks below every y.
	if res.U != 0 {
		t.Errorf("U = %v, want 0", res.U)
	}
}

func TestMannWhitneyEmptySample(t *testing.T) {
	res := MannWhitneyU(nil, []float64{1, 2})
	if !math.IsNaN(res.P) {
		t.Errorf("empty sample p = %v, want NaN", res.P)
	}
}

func TestMannWhitneyAllTied(t *testing.T) {
	xs := []float64{5, 5, 5}
	ys := []float64{5, 5, 5, 5}
	res := MannWhitneyU(xs, ys)
	if res.P != 1 || res.Z != 0 {
		t.Errorf("all-tied result = %+v, want P=1, Z=0", res)
	}
}

func TestMannWhitneyKnownSmallExample(t *testing.T) {
	xs := []float64{19, 22, 16, 29, 24}
	ys := []float64{20, 11, 17, 12}
	res := MannWhitneyU(xs, ys)
	// Ranks of xs in the combined sample {11,12,16,17,19,20,22,24,29}:
	// 16->3, 19->5, 22->7, 24->8, 29->9 => rankSum1 = 32, U1 = 32 - 15 = 17.
	if res.U != 17 {
		t.Errorf("U = %v, want 17", res.U)
	}
	if res.P < 0.05 || res.P > 0.3 {
		t.Errorf("p = %v, expected a non-significant mid-range value", res.P)
	}
}

func TestMannWhitneySymmetry(t *testing.T) {
	xs := []float64{1, 3, 5, 7, 9, 11}
	ys := []float64{2, 4, 6, 8}
	a := MannWhitneyU(xs, ys)
	b := MannWhitneyU(ys, xs)
	if !almostEq(a.P, b.P, 1e-12) {
		t.Errorf("p not symmetric: %v vs %v", a.P, b.P)
	}
	if !almostEq(a.Z, -b.Z, 1e-12) {
		t.Errorf("z not antisymmetric: %v vs %v", a.Z, b.Z)
	}
	// U1 + U2 = n1*n2.
	if !almostEq(a.U+b.U, float64(len(xs)*len(ys)), 1e-12) {
		t.Errorf("U1+U2 = %v, want %d", a.U+b.U, len(xs)*len(ys))
	}
}

func TestMannWhitneyDetectsShift(t *testing.T) {
	rng := NewRNG(11)
	n := 200
	xs := make([]float64, n)
	ys := make([]float64, n)
	zsSame := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.NormFloat64()
		ys[i] = rng.NormFloat64() + 1.0 // clearly shifted
		zsSame[i] = rng.NormFloat64()   // same distribution as xs
	}
	if res := MannWhitneyU(xs, ys); res.P > 1e-6 {
		t.Errorf("shifted distribution p = %v, want tiny", res.P)
	}
	if res := MannWhitneyU(xs, zsSame); res.P < 0.001 {
		t.Errorf("same distribution p = %v, unexpectedly significant", res.P)
	}
}

func TestMannWhitneyFalsePositiveRate(t *testing.T) {
	// Under the null the p-value should be roughly uniform: about 5% of
	// simulations significant at 0.05.
	rng := NewRNG(12)
	trials := 400
	sig := 0
	for tr := 0; tr < trials; tr++ {
		xs := make([]float64, 60)
		ys := make([]float64, 60)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
		}
		if MannWhitneyU(xs, ys).P < 0.05 {
			sig++
		}
	}
	rate := float64(sig) / float64(trials)
	if rate > 0.11 {
		t.Errorf("false positive rate %v at alpha=0.05, want <= ~0.11", rate)
	}
}
