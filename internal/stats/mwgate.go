package stats

// This file is the Mann–Whitney analogue of TwoSidedPGate: a precomputed
// decision band that answers the audit's similarity-gate comparison
//
//	MannWhitneyFromCross(cross, n1, n2).P >= epsilon
//
// by two integer compares against a per-(n1, n2) critical band, skipping the
// sqrt and erfc per pair. With no ties anywhere (the only regime the audit's
// cross kernels run in), P is a function of the integer cross count alone:
// u1 == cross exactly, the deviation |u1 - mu| is a multiple of one half that
// float64 subtraction produces exactly, and P decreases as the deviation
// grows. The passing set is therefore a contiguous integer band [Lo, Hi]
// symmetric about the mean n1*n2/2, and the gate materializes that band once
// per size pair.
//
// Like TwoSidedPGate, the construction evaluates the ACTUAL implementation —
// MannWhitneyFromCross, not an analytic quantile — so the band compare is the
// exact decision. Small products verify every integer exhaustively. Large
// products bisect and then verify a window of integers around each boundary:
// at any boundary the per-step p increment is ~2·phi(z)/sigma — at least ten
// orders of magnitude above erfc's sub-ULP wiggle for any product the
// exhaustive path doesn't already cover — so a non-contiguity the window scan
// doesn't see cannot exist. A construction that nevertheless detects a gap
// reports ok=false and callers fall back to evaluating P directly.

// mwGateExhaustiveLimit is the n1*n2 product up to which the constructor
// checks every cross value instead of bisecting. 1<<12 evaluations cost a few
// hundred microseconds once per size pair; above it the per-step p increment
// dwarfs any floating-point wiggle and bisection plus boundary verification
// is airtight (see the file comment).
const mwGateExhaustiveLimit = 1 << 12

// mwGateVerifyWindow is how many integers beyond each bisected boundary the
// constructor re-checks explicitly.
const mwGateVerifyWindow = 64

// MannWhitneyCrossGate is the materialized band for one (n1, n2, epsilon):
// a no-ties pair of these sample sizes passes the similarity gate iff its
// cross count #{x > y} lies in [Lo, Hi]. An empty band (Lo > Hi) means no
// cross value passes.
type MannWhitneyCrossGate struct {
	Lo, Hi int
}

// NewMannWhitneyCrossGate builds the gate for sample sizes n1, n2 at
// similarity threshold epsilon. ok is false when no trustworthy band exists —
// degenerate sizes (either sample empty: P is NaN and never passes, but
// callers should keep NaN semantics on the exact path) or a detected
// non-contiguity — in which case callers must evaluate P directly.
func NewMannWhitneyCrossGate(n1, n2 int, epsilon float64) (g MannWhitneyCrossGate, ok bool) {
	if n1 <= 0 || n2 <= 0 {
		return MannWhitneyCrossGate{Lo: 1, Hi: 0}, false
	}
	total := n1 * n2
	pass := func(c int) bool {
		return MannWhitneyFromCross(c, n1, n2).P >= epsilon
	}

	if total <= mwGateExhaustiveLimit {
		lo, hi := -1, -2
		for c := 0; c <= total; c++ {
			if pass(c) {
				if lo < 0 {
					lo = c
				} else if c != hi+1 {
					return MannWhitneyCrossGate{}, false // gap: band untrustworthy
				}
				hi = c
			}
		}
		if lo < 0 {
			return MannWhitneyCrossGate{Lo: 1, Hi: 0}, true // empty band: nothing passes
		}
		return MannWhitneyCrossGate{Lo: lo, Hi: hi}, true
	}

	// P is maximal at the center (deviation zero). If even the center fails,
	// nothing can pass (epsilon > 1).
	center := total / 2
	if !pass(center) && !pass(center+1) {
		return MannWhitneyCrossGate{Lo: 1, Hi: 0}, true
	}
	if !pass(center) {
		center++
	}

	// Bisect the upper boundary: invariant pass(lo), !pass(hi).
	hi := total
	if pass(hi) {
		g.Hi = total
	} else {
		lo := center
		for hi-lo > 1 {
			mid := lo + (hi-lo)/2
			if pass(mid) {
				lo = mid
			} else {
				hi = mid
			}
		}
		g.Hi = lo
	}
	// Verify: extend through any passing integer the bisection's monotonicity
	// assumption would have hidden, then confirm a window of failures above.
	for g.Hi < total && pass(g.Hi+1) {
		g.Hi++
	}
	for c := g.Hi + 2; c <= g.Hi+mwGateVerifyWindow && c <= total; c++ {
		if pass(c) {
			return MannWhitneyCrossGate{}, false // non-contiguous: refuse the band
		}
	}

	// Lower boundary by the exact symmetry P(c) == P(total-c), then the same
	// explicit verification mirrored.
	g.Lo = total - g.Hi
	for g.Lo > 0 && pass(g.Lo-1) {
		g.Lo--
	}
	if !pass(g.Lo) || (g.Lo > 0 && pass(g.Lo-1)) {
		return MannWhitneyCrossGate{}, false
	}
	for c := g.Lo - 2; c >= g.Lo-mwGateVerifyWindow && c >= 0; c-- {
		if pass(c) {
			return MannWhitneyCrossGate{}, false
		}
	}
	return g, true
}

// Contains reports whether cross passes the gate: the exact decision
// P >= epsilon for a no-ties pair of the gate's sizes.
//
//lint:hotpath
func (g MannWhitneyCrossGate) Contains(cross int) bool {
	return cross >= g.Lo && cross <= g.Hi
}

// DecideRange resolves the gate from a cross-count interval [lo, hi] (such as
// CrossBounds produces) without the exact count: decided is true when every
// value in the interval falls inside the band (pass true) or entirely outside
// it on one side (pass false). An interval straddling a boundary is
// undecided and the caller must compute the exact count.
//
//lint:hotpath
func (g MannWhitneyCrossGate) DecideRange(lo, hi int) (pass, decided bool) {
	if lo >= g.Lo && hi <= g.Hi {
		return true, true
	}
	if hi < g.Lo || lo > g.Hi {
		return false, true
	}
	return false, false
}
