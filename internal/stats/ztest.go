package stats

import "math"

// TwoProportionZResult holds the outcome of a two-proportion z-test.
type TwoProportionZResult struct {
	Z float64 // test statistic
	P float64 // two-sided p-value
}

// TwoProportionZ tests H0: the success probability underlying k1/n1 equals
// the one underlying k2/n2, using the pooled two-proportion z-test. This is
// the dissimilarity metric the paper uses on racial composition: a small
// p-value (large |z|) means the minority shares of two regions differ
// significantly.
//
// Degenerate inputs (empty samples, or a pooled proportion of exactly 0 or 1,
// where both samples are necessarily identical) return Z = 0, P = 1 — i.e.
// "not dissimilar" — except when either n is zero, which returns P = NaN so
// callers can treat the pair as non-comparable.
func TwoProportionZ(k1, n1, k2, n2 int) TwoProportionZResult {
	z := TwoProportionZStat(k1, n1, k2, n2)
	if math.IsNaN(z) {
		return TwoProportionZResult{Z: math.NaN(), P: math.NaN()}
	}
	return TwoProportionZResult{Z: z, P: TwoSidedP(z)}
}

// TwoProportionZStat is TwoProportionZ's test statistic alone: NaN for empty
// samples, exactly 0 for a degenerate pooled proportion (where the full test
// reports P = 1, which equals TwoSidedP(0) bit-for-bit). Callers that only
// need a threshold decision pair it with a TwoSidedPGate and skip the erfc.
//
//lint:hotpath
func TwoProportionZStat(k1, n1, k2, n2 int) float64 {
	if n1 <= 0 || n2 <= 0 {
		return math.NaN()
	}
	p1 := float64(k1) / float64(n1)
	p2 := float64(k2) / float64(n2)
	pooled := float64(k1+k2) / float64(n1+n2)
	if pooled <= 0 || pooled >= 1 {
		return 0
	}
	se := math.Sqrt(pooled * (1 - pooled) * (1/float64(n1) + 1/float64(n2)))
	return (p1 - p2) / se
}

// OneProportionZ tests H0: the success probability underlying k/n equals p0.
func OneProportionZ(k, n int, p0 float64) TwoProportionZResult {
	if n <= 0 || p0 <= 0 || p0 >= 1 {
		return TwoProportionZResult{Z: math.NaN(), P: math.NaN()}
	}
	phat := float64(k) / float64(n)
	se := math.Sqrt(p0 * (1 - p0) / float64(n))
	z := (phat - p0) / se
	return TwoProportionZResult{Z: z, P: TwoSidedP(z)}
}
