package stats

import (
	"math"
	"testing"
)

// TestBenjaminiHochbergSubsetMatchesFullSort is the direct check of the
// subset-reduction equivalence argument: on NaN-free inputs the p <= q
// subset procedure must produce the identical rejection mask to the
// historical full index sort (benjaminiHochbergNaN), including inputs with
// heavy ties, values straddling q, and degenerate all-large / all-small
// mixes.
func TestBenjaminiHochbergSubsetMatchesFullSort(t *testing.T) {
	rng := NewRNG(0xFD4)
	for trial := 0; trial < 200; trial++ {
		n := int(rng.Uint64() % 300)
		p := make([]float64, n)
		for i := range p {
			switch rng.Uint64() % 4 {
			case 0:
				p[i] = rng.Float64() * 0.02 // dense near zero
			case 1:
				p[i] = rng.Float64() // uniform
			case 2:
				p[i] = 0.05 // exactly at a typical q: ties on the threshold
			default:
				p[i] = 0.5 + rng.Float64()*0.5 // never rejectable
			}
		}
		q := []float64{0.01, 0.05, 0.2}[trial%3]
		want := benjaminiHochbergNaN(p, q)
		for _, workers := range []int{1, 4} {
			got := BenjaminiHochbergWorkers(p, q, workers)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d workers=%d q=%g: index %d (p=%g): subset says %v, full sort says %v",
						trial, workers, q, i, p[i], got[i], want[i])
				}
			}
		}
	}
}

// TestBenjaminiHochbergNaNFallback pins the NaN contract: any NaN input
// routes every worker count through the full-sort fallback, so the mask is
// identical across worker counts and across repeated calls. (No value-level
// assertions: an incomparable NaN makes the index sort's comparator
// inconsistent, and reproducing that historical placement exactly is the
// fallback's whole point.)
func TestBenjaminiHochbergNaNFallback(t *testing.T) {
	p := []float64{0.001, math.NaN(), 0.004, 0.9, 0.012, math.NaN(), 0.7}
	q := 0.05
	base := BenjaminiHochberg(p, q)
	for _, workers := range []int{1, 2, 8} {
		got := BenjaminiHochbergWorkers(p, q, workers)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("workers=%d: index %d diverges from workers=1 on NaN input", workers, i)
			}
		}
	}
	again := BenjaminiHochberg(p, q)
	for i := range base {
		if again[i] != base[i] {
			t.Fatalf("repeat call diverges at index %d: NaN fallback is not deterministic", i)
		}
	}
}
