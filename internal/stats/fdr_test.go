package stats

import "testing"

func TestBenjaminiHochbergKnownExample(t *testing.T) {
	// Classic worked example: n=6, q=0.25.
	p := []float64{0.009, 0.011, 0.039, 0.041, 0.042, 0.06}
	rej := BenjaminiHochberg(p, 0.25)
	// Thresholds k/6*0.25: 0.0417, 0.0833, 0.125, 0.1667, 0.2083, 0.25.
	// Largest k with p_(k) <= threshold: k=5 (0.042 <= 0.2083); k=6 fails
	// (0.06 <= 0.25 holds!). So all six are rejected.
	for i, r := range rej {
		if !r {
			t.Errorf("hypothesis %d should be rejected", i)
		}
	}
}

func TestBenjaminiHochbergPartialRejection(t *testing.T) {
	p := []float64{0.001, 0.008, 0.039, 0.041, 0.2, 0.9}
	rej := BenjaminiHochberg(p, 0.05)
	// Thresholds k/6*0.05: .0083, .0167, .025, .0333, .0417, .05.
	// k=1: .001<=.0083 ok; k=2: .008<=.0167 ok; k=3: .039>.025; k=4:
	// .041>.0333; rest fail. Cut = 2.
	want := []bool{true, true, false, false, false, false}
	for i := range want {
		if rej[i] != want[i] {
			t.Errorf("rej[%d] = %v, want %v (full: %v)", i, rej[i], want[i], rej)
		}
	}
}

func TestBenjaminiHochbergOrderIndependent(t *testing.T) {
	p := []float64{0.9, 0.001, 0.2, 0.008}
	rej := BenjaminiHochberg(p, 0.05)
	if !rej[1] || !rej[3] {
		t.Errorf("small p-values should be rejected regardless of position: %v", rej)
	}
	if rej[0] || rej[2] {
		t.Errorf("large p-values should survive: %v", rej)
	}
}

func TestBenjaminiHochbergEdgeCases(t *testing.T) {
	if got := BenjaminiHochberg(nil, 0.05); len(got) != 0 {
		t.Error("empty input should give empty output")
	}
	if got := BenjaminiHochberg([]float64{0.01}, 0); got[0] {
		t.Error("q=0 rejects nothing")
	}
	if got := BenjaminiHochberg([]float64{0.04}, 0.05); !got[0] {
		t.Error("single p below q should be rejected")
	}
	all := BenjaminiHochberg([]float64{1, 1, 1}, 0.05)
	for _, r := range all {
		if r {
			t.Error("p=1 must never be rejected")
		}
	}
}

func TestBenjaminiHochbergControlsFDRUnderNull(t *testing.T) {
	// All-null p-values (uniform): the expected number of rejections is
	// tiny; check the empirical rate over many trials.
	rng := NewRNG(91)
	trials, n := 200, 50
	rejections := 0
	for tr := 0; tr < trials; tr++ {
		p := make([]float64, n)
		for i := range p {
			p[i] = rng.Float64()
		}
		for _, r := range BenjaminiHochberg(p, 0.05) {
			if r {
				rejections++
			}
		}
	}
	// Under the global null, the probability of ANY rejection is about q.
	rate := float64(rejections) / float64(trials*n)
	if rate > 0.01 {
		t.Errorf("null rejection rate %v, want near 0", rate)
	}
}
