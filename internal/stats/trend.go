package stats

import "math"

// MannKendallResult holds the outcome of the Mann–Kendall trend test.
type MannKendallResult struct {
	S     int     // the Mann–Kendall S statistic
	Tau   float64 // Kendall's tau-b style normalization of S
	Z     float64 // normal-approximation statistic (tie-corrected)
	P     float64 // two-sided p-value
	Slope float64 // Theil–Sen slope estimate (median pairwise slope)
}

// MannKendall tests a time series for monotone trend without assuming a
// distribution: S counts concordant minus discordant pairs; significance
// uses the tie-corrected normal approximation with continuity correction.
// The companion Theil–Sen slope estimates the per-step change. Series
// shorter than 3 return P = NaN.
//
// The trend analysis uses it to answer the regulator's question "is the
// measured spatial unfairness of this lender declining across reporting
// periods?".
func MannKendall(xs []float64) MannKendallResult {
	n := len(xs)
	if n < 3 {
		return MannKendallResult{P: math.NaN(), Tau: math.NaN(), Z: math.NaN(), Slope: math.NaN()}
	}
	s := 0
	slopes := make([]float64, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			switch {
			case xs[j] > xs[i]:
				s++
			case xs[j] < xs[i]:
				s--
			}
			if j != i {
				slopes = append(slopes, (xs[j]-xs[i])/float64(j-i))
			}
		}
	}

	// Tie correction: group sizes of equal values.
	counts := make(map[float64]int, n)
	for _, x := range xs {
		counts[x]++
	}
	fn := float64(n)
	varS := fn * (fn - 1) * (2*fn + 5) / 18
	for _, t := range counts {
		if t > 1 {
			ft := float64(t)
			varS -= ft * (ft - 1) * (2*ft + 5) / 18
		}
	}

	var z float64
	switch {
	case varS <= 0:
		z = 0
	case s > 0:
		z = (float64(s) - 1) / math.Sqrt(varS)
	case s < 0:
		z = (float64(s) + 1) / math.Sqrt(varS)
	}

	return MannKendallResult{
		S:     s,
		Tau:   float64(s) / (fn * (fn - 1) / 2),
		Z:     z,
		P:     TwoSidedP(z),
		Slope: Median(slopes),
	}
}
