package stats

import (
	"math"
	"testing"
)

// TestCrossBoundsCoarseContainsExact pins the coarse digest's soundness
// contract: for same-grid distinct samples the group-resolution interval
// always contains the fine bucket-resolution interval, which contains the
// exact cross count — so a verdict decided from the coarse interval alone is
// always the exact verdict.
func TestCrossBoundsCoarseContainsExact(t *testing.T) {
	rng := NewRNG(0xC0A25E)
	for trial := 0; trial < 300; trial++ {
		buckets := []int{1, 8, 64, 256, 2048}[trial%5]
		grid, ok := NewRankGrid(0, 1, buckets)
		if !ok {
			t.Fatal("grid refused")
		}
		n1, n2 := 1+int(rng.Uint64()%60), 1+int(rng.Uint64()%60)
		xs := distinctSorted(rng, n1)
		ys := distinctSorted(rng, n2)
		var a, b RankedSample
		FillRankedSample(grid, xs, &a)
		FillRankedSample(grid, ys, &b)

		cLo, cHi := CrossBoundsCoarse(&a, &b)
		fLo, fHi := CrossBounds(&a, &b)
		cross := CrossCountNoTies(&a, &b)
		if !(cLo <= fLo && fLo <= cross && cross <= fHi && fHi <= cHi) {
			t.Fatalf("trial %d (buckets=%d): want coarse [%d,%d] ⊇ fine [%d,%d] ∋ exact %d",
				trial, buckets, cLo, cHi, fLo, fHi, cross)
		}
		if cLo < 0 || cHi > n1*n2 {
			t.Fatalf("trial %d: coarse bounds [%d,%d] outside [0,%d]", trial, cLo, cHi, n1*n2)
		}
		// When the grid has at most RankCoarseGroups buckets, every group is
		// exactly one bucket and the digest carries full fine information.
		if buckets <= RankCoarseGroups && (cLo != fLo || cHi != fHi) {
			t.Fatalf("trial %d: buckets=%d <= groups but coarse [%d,%d] != fine [%d,%d]",
				trial, buckets, cLo, cHi, fLo, fHi)
		}
	}
}

// TestCrossBoundsCoarseSeparated checks the interval collapses to the exact
// count when the samples occupy disjoint group ranges, and that empty
// samples return the empty product.
func TestCrossBoundsCoarseSeparated(t *testing.T) {
	grid, ok := NewRankGrid(0, 1, 2048)
	if !ok {
		t.Fatal("grid refused")
	}
	xs := []float64{0.80, 0.85, 0.90, 0.95}
	ys := []float64{0.05, 0.10, 0.15}
	var a, b RankedSample
	FillRankedSample(grid, xs, &a)
	FillRankedSample(grid, ys, &b)
	if lo, hi := CrossBoundsCoarse(&a, &b); lo != len(xs)*len(ys) || hi != lo {
		t.Fatalf("separated samples: coarse bounds [%d,%d], want exactly %d", lo, hi, len(xs)*len(ys))
	}
	if lo, hi := CrossBoundsCoarse(&b, &a); lo != 0 || hi != 0 {
		t.Fatalf("reversed separated samples: coarse bounds [%d,%d], want [0,0]", lo, hi)
	}
	var empty RankedSample
	FillRankedSample(grid, nil, &empty)
	if lo, hi := CrossBoundsCoarse(&a, &empty); lo != 0 || hi != 0 {
		t.Fatalf("empty partner: coarse bounds [%d,%d], want [0,0]", lo, hi)
	}
}

// TestCoarseGroupsClamp pins the digest sizing rule: RankCoarseGroups for
// big grids, the bucket count itself when the grid is already smaller.
func TestCoarseGroupsClamp(t *testing.T) {
	if got := CoarseGroups(2048); got != RankCoarseGroups {
		t.Fatalf("CoarseGroups(2048) = %d, want %d", got, RankCoarseGroups)
	}
	if got := CoarseGroups(7); got != 7 {
		t.Fatalf("CoarseGroups(7) = %d, want 7", got)
	}
}

// TestMannWhitneyFromCrossDegenerate pins the empty-sample contract: NaN
// everywhere, matching MannWhitneyUSorted's treatment of empty samples.
func TestMannWhitneyFromCrossDegenerate(t *testing.T) {
	for _, tc := range []struct{ n1, n2 int }{{0, 5}, {5, 0}, {0, 0}} {
		r := MannWhitneyFromCross(0, tc.n1, tc.n2)
		if !math.IsNaN(r.U) || !math.IsNaN(r.Z) || !math.IsNaN(r.P) {
			t.Fatalf("MannWhitneyFromCross(0, %d, %d) = %+v, want all NaN", tc.n1, tc.n2, r)
		}
	}
}

// TestMannWhitneyCrossGateExtremeEpsilon exercises the bisected
// constructor's short-circuit arms above the exhaustive limit: an epsilon
// above 1 admits no cross value (even the centered, maximal-P one), and an
// epsilon of 0 admits the full band without any bisection.
func TestMannWhitneyCrossGateExtremeEpsilon(t *testing.T) {
	n1, n2 := 100, 100 // total 10000 > mwGateExhaustiveLimit
	g, ok := NewMannWhitneyCrossGate(n1, n2, 1.5)
	if !ok {
		t.Fatal("epsilon > 1 should still yield a trustworthy (empty) band")
	}
	if g.Lo <= g.Hi {
		t.Fatalf("epsilon > 1: band [%d,%d] is non-empty", g.Lo, g.Hi)
	}
	g, ok = NewMannWhitneyCrossGate(n1, n2, 0)
	if !ok {
		t.Fatal("epsilon 0 should yield a trustworthy band")
	}
	if g.Lo != 0 || g.Hi != n1*n2 {
		t.Fatalf("epsilon 0: band [%d,%d], want [0,%d]", g.Lo, g.Hi, n1*n2)
	}
	if !g.Contains(0) || !g.Contains(n1*n2) {
		t.Fatal("full band must contain both extremes")
	}
}

// TestPairNullCacheWorlds pins the Worlds accessor against the constructor
// argument (the delta engine uses it to rebuild compatible caches).
func TestPairNullCacheWorlds(t *testing.T) {
	c := NewPairNullCache(8, 99, 16)
	if got := c.Worlds(); got != 99 {
		t.Fatalf("Worlds() = %d, want 99", got)
	}
}

// TestRNGBernoulli sanity-checks the Bernoulli helper's edge probabilities
// and that an intermediate p produces both outcomes deterministically for a
// fixed seed.
func TestRNGBernoulli(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 32; i++ {
		if r.Bernoulli(1.1) != true {
			t.Fatal("Bernoulli(p>1) must always be true")
		}
		if r.Bernoulli(0) != false {
			t.Fatal("Bernoulli(0) must always be false")
		}
	}
	trues := 0
	for i := 0; i < 1000; i++ {
		if r.Bernoulli(0.5) {
			trues++
		}
	}
	if trues == 0 || trues == 1000 {
		t.Fatalf("Bernoulli(0.5): %d/1000 true — degenerate stream", trues)
	}
}
