package stats

import "math"

// WelchTResult holds the outcome of Welch's unequal-variance t-test.
type WelchTResult struct {
	T  float64 // test statistic
	DF float64 // Welch–Satterthwaite degrees of freedom
	P  float64 // two-sided p-value (normal approximation of the t tail)
}

// WelchT tests H0: the two samples share a mean, without assuming equal
// variances. It is offered as a parametric alternative similarity metric to
// the rank-based Mann–Whitney U test. Samples smaller than two observations
// return P = NaN.
//
// The p-value uses the Student-t tail computed through the regularized
// incomplete beta function, exact for the test's distribution under
// normality.
func WelchT(xs, ys []float64) WelchTResult {
	n1, n2 := len(xs), len(ys)
	if n1 < 2 || n2 < 2 {
		return WelchTResult{T: math.NaN(), DF: math.NaN(), P: math.NaN()}
	}
	return WelchTFromMoments(n1, Mean(xs), SampleVariance(xs), n2, Mean(ys), SampleVariance(ys))
}

// WelchTFromMoments is WelchT computed from each sample's size, mean, and
// unbiased sample variance instead of the raw observations. A caller that
// compares one sample against many others can compute the moments once per
// sample (the audit engine's PreparedMetric path); results are bit-identical
// to WelchT on the same data. Samples smaller than two observations return
// P = NaN.
func WelchTFromMoments(n1 int, m1, v1 float64, n2 int, m2, v2 float64) WelchTResult {
	if n1 < 2 || n2 < 2 {
		return WelchTResult{T: math.NaN(), DF: math.NaN(), P: math.NaN()}
	}
	se1, se2 := v1/float64(n1), v2/float64(n2)
	se := math.Sqrt(se1 + se2)
	if se == 0 { //lint:floateq-ok degenerate-variance-sentinel
		if m1 == m2 { //lint:floateq-ok degenerate-variance-sentinel
			return WelchTResult{T: 0, DF: float64(n1 + n2 - 2), P: 1}
		}
		return WelchTResult{T: math.Inf(1), DF: float64(n1 + n2 - 2), P: 0}
	}
	t := (m1 - m2) / se
	df := (se1 + se2) * (se1 + se2) /
		(se1*se1/float64(n1-1) + se2*se2/float64(n2-1))
	return WelchTResult{T: t, DF: df, P: StudentTTwoSidedP(t, df)}
}

// StudentTTwoSidedP returns the two-sided p-value P(|T| >= |t|) for a
// Student-t variable with df degrees of freedom, via the regularized
// incomplete beta identity.
func StudentTTwoSidedP(t, df float64) float64 {
	if math.IsNaN(t) || df <= 0 {
		return math.NaN()
	}
	if math.IsInf(t, 0) {
		return 0
	}
	x := df / (df + t*t)
	p := regularizedIncompleteBeta(df/2, 0.5, x)
	if p > 1 {
		p = 1
	}
	if p < 0 {
		p = 0
	}
	return p
}

// regularizedIncompleteBeta computes I_x(a, b) by the continued-fraction
// expansion (Numerical Recipes 6.4).
func regularizedIncompleteBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta := lgamma(a) + lgamma(b) - lgamma(a+b)
	front := math.Exp(a*math.Log(x)+b*math.Log(1-x)-lbeta) / a
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x)
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	lbeta2 := lgamma(b) + lgamma(a) - lgamma(a+b)
	front2 := math.Exp(b*math.Log(1-x)+a*math.Log(x)-lbeta2) / b
	return 1 - front2*betaCF(b, a, 1-x)
}

func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 1e-14
		tiny    = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		aa := fm * (b - fm) * x / ((qam + 2*fm) * (a + 2*fm))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + 2*fm) * (qap + 2*fm))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
