package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or NaN when xs is empty.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// SampleVariance returns the unbiased sample variance (n-1 denominator), or
// NaN when fewer than two observations are given.
func SampleVariance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median of xs without modifying it, or NaN when empty.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quantile returns the q-th quantile of xs (0 <= q <= 1) using linear
// interpolation between order statistics, without modifying xs. It returns
// NaN when xs is empty or q is outside [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MinMax returns the minimum and maximum of xs, or (NaN, NaN) when empty.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Summary holds the descriptive statistics of one sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Q25    float64
	Median float64
	Q75    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	lo, hi := MinMax(xs)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    lo,
		Q25:    Quantile(xs, 0.25),
		Median: Median(xs),
		Q75:    Quantile(xs, 0.75),
		Max:    hi,
	}
}
