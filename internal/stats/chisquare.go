package stats

import "math"

// ChiSquareCDF returns P(X <= x) for a chi-square distribution with k
// degrees of freedom, via the regularized lower incomplete gamma function.
// It returns NaN for k <= 0 and 0 for x <= 0.
func ChiSquareCDF(x float64, k int) float64 {
	if k <= 0 {
		return math.NaN()
	}
	if x <= 0 {
		return 0
	}
	return regularizedGammaP(float64(k)/2, x/2)
}

// ChiSquareSF returns the chi-square survival function P(X > x) — the
// asymptotic p-value of a likelihood-ratio statistic with k degrees of
// freedom. The framework uses it to prescreen candidate pairs before paying
// for Monte-Carlo simulation.
func ChiSquareSF(x float64, k int) float64 {
	if k <= 0 {
		return math.NaN()
	}
	if x <= 0 {
		return 1
	}
	return 1 - regularizedGammaP(float64(k)/2, x/2)
}

// regularizedGammaP computes P(a, x) = gamma(a, x) / Gamma(a) using the
// series expansion for x < a+1 and the continued fraction otherwise
// (Numerical Recipes 6.2).
func regularizedGammaP(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 { //lint:floateq-ok exact-zero-boundary
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaContinuedFraction(a, x)
}

func gammaSeries(a, x float64) float64 {
	const (
		maxIter = 500
		eps     = 1e-14
	)
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaContinuedFraction(a, x float64) float64 {
	const (
		maxIter = 500
		eps     = 1e-14
		tiny    = 1e-300
	)
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}
