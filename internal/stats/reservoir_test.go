package stats

import (
	"math"
	"testing"
)

func TestReservoirBelowCapacityKeepsEverything(t *testing.T) {
	r := NewReservoir(10, NewRNG(31))
	for i := 0; i < 5; i++ {
		r.Add(float64(i))
	}
	if r.Len() != 5 || r.Seen() != 5 {
		t.Fatalf("Len=%d Seen=%d", r.Len(), r.Seen())
	}
	for i, v := range r.Sample() {
		if v != float64(i) {
			t.Errorf("sample[%d] = %v", i, v)
		}
	}
}

func TestReservoirCapsSize(t *testing.T) {
	r := NewReservoir(16, NewRNG(32))
	for i := 0; i < 10000; i++ {
		r.Add(float64(i))
	}
	if r.Len() != 16 {
		t.Errorf("Len = %d, want 16", r.Len())
	}
	if r.Seen() != 10000 {
		t.Errorf("Seen = %d", r.Seen())
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Each element of a 1000-item stream should land in a 100-slot reservoir
	// with probability ~0.1; check the mean of sampled indices is near the
	// stream mean.
	var means []float64
	for trial := 0; trial < 50; trial++ {
		r := NewReservoir(100, NewRNG(uint64(100+trial)))
		for i := 0; i < 1000; i++ {
			r.Add(float64(i))
		}
		means = append(means, Mean(r.Sample()))
	}
	grand := Mean(means)
	if math.Abs(grand-499.5) > 20 {
		t.Errorf("grand mean of samples = %v, want ~499.5", grand)
	}
}

func TestReservoirPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewReservoir(0, NewRNG(1))
}
