package stats

import "testing"

// benchRankedSet builds many distinct ranked samples on one grid so kernel
// benchmarks cycle through varying inputs — a fixed input pair lets the
// branch predictor memorize the comparison stream and understates cost ~3x.
func benchRankedSet(b *testing.B, samples, n int) ([]RankedSample, []*RankedSample) {
	b.Helper()
	rng := NewRNG(0xBE7C4)
	g, ok := NewRankGrid(-5, 5, RankGridBuckets)
	if !ok {
		b.Fatal("grid")
	}
	rs := make([]RankedSample, samples)
	ptr := make([]*RankedSample, samples)
	for s := range rs {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		sortFloats(xs)
		FillRankedSample(g, xs, &rs[s])
		ptr[s] = &rs[s]
	}
	return rs, ptr
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func BenchmarkCrossCountNoTies(b *testing.B) {
	_, ptr := benchRankedSet(b, 64, 300)
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		a := ptr[i%64]
		c := ptr[(i*7+3)%64]
		sink += CrossCountNoTies(a, c)
	}
	if sink == -1 {
		b.Fatal("sink")
	}
}

func BenchmarkCrossCountTieChecking(b *testing.B) {
	_, ptr := benchRankedSet(b, 64, 300)
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		a := ptr[i%64]
		c := ptr[(i*7+3)%64]
		cr, _ := CrossCount(a, c)
		sink += cr
	}
	if sink == -1 {
		b.Fatal("sink")
	}
}
