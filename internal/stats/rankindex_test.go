package stats

import (
	"math"
	"sort"
	"testing"
)

// rankTestSample draws a sorted sample whose tie density is controlled by
// quantize: 0 leaves continuous (almost surely distinct) values, larger
// values round onto a coarse lattice so within- and cross-sample ties abound.
func rankTestSample(rng *RNG, n int, quantize float64) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		v := rng.NormFloat64()*10 + rng.Float64()
		if quantize > 0 {
			v = math.Round(v/quantize) * quantize
		}
		xs[i] = v
	}
	sort.Float64s(xs)
	return xs
}

// crossCountRef is the brute-force oracle: #{(x, y) : x > y} and whether any
// cross-sample tie exists.
func crossCountRef(xs, ys []float64) (cross int, tied bool) {
	for _, x := range xs {
		for _, y := range ys {
			if x > y {
				cross++
			} else if x == y {
				tied = true
			}
		}
	}
	return cross, tied
}

func TestOrderedKeyPreservesOrder(t *testing.T) {
	vals := []float64{math.Inf(-1), -1e300, -3.5, -1, -math.SmallestNonzeroFloat64,
		math.Copysign(0, -1), 0, math.SmallestNonzeroFloat64, 0.5, 1, 2.75, 1e300, math.Inf(1)}
	for i, a := range vals {
		for j, b := range vals {
			ka, kb := OrderedKey(a), OrderedKey(b)
			switch {
			case a < b && !(ka < kb):
				t.Fatalf("OrderedKey(%v) >= OrderedKey(%v) but %v < %v", a, b, a, b)
			case a == b && ka != kb:
				t.Fatalf("OrderedKey(%v) != OrderedKey(%v) for equal values (i=%d j=%d)", a, b, i, j)
			case a > b && !(ka > kb):
				t.Fatalf("OrderedKey(%v) <= OrderedKey(%v) but %v > %v", a, b, a, b)
			}
			if ka == ^uint64(0) {
				t.Fatalf("OrderedKey(%v) collides with the sentinel key", a)
			}
		}
	}
}

func TestNewRankGridDegenerate(t *testing.T) {
	cases := []struct{ lo, hi float64 }{
		{1, 1}, {2, 1}, {math.NaN(), 1}, {0, math.NaN()},
		{math.Inf(-1), 0}, {0, math.Inf(1)}, {-math.MaxFloat64, math.MaxFloat64},
	}
	for _, c := range cases {
		if _, ok := NewRankGrid(c.lo, c.hi, RankGridBuckets); ok {
			// The full-float span makes the scale underflow to zero; the rest
			// are non-finite or empty spans. All must be rejected.
			if !(math.IsInf(c.lo, 0) || math.IsInf(c.hi, 0)) && c.lo == -math.MaxFloat64 {
				continue
			}
			t.Fatalf("NewRankGrid(%v, %v) unexpectedly ok", c.lo, c.hi)
		}
	}
	if _, ok := NewRankGrid(0, 1, RankGridBuckets); !ok {
		t.Fatal("NewRankGrid(0, 1) should be ok")
	}
}

// TestCrossCountMatchesBruteForce drives the bucket kernels against the
// brute-force cross count over a spread of sizes, tie densities, and grids —
// including grids narrower than the data so clamping is exercised.
func TestCrossCountMatchesBruteForce(t *testing.T) {
	rng := NewRNG(0xC20551)
	for trial := 0; trial < 400; trial++ {
		quantize := 0.0
		switch trial % 4 {
		case 1:
			quantize = 2
		case 2:
			quantize = 8
		case 3:
			quantize = 0.25
		}
		n1 := rng.Intn(60)
		n2 := rng.Intn(60)
		xs := rankTestSample(rng, n1, quantize)
		ys := rankTestSample(rng, n2, quantize)

		lo, hi := -40.0, 40.0
		if trial%5 == 0 {
			lo, hi = -5, 5 // force edge-bucket clamping
		}
		grid, ok := NewRankGrid(lo, hi, 64)
		if !ok {
			t.Fatal("grid construction failed")
		}
		var ra, rb RankedSample
		FillRankedSample(grid, xs, &ra)
		FillRankedSample(grid, ys, &rb)

		if ra.Distinct != StrictlyIncreasing(xs) || rb.Distinct != StrictlyIncreasing(ys) {
			t.Fatalf("trial %d: Distinct flag disagrees with StrictlyIncreasing", trial)
		}

		wantCross, wantTied := crossCountRef(xs, ys)
		if ra.Distinct && rb.Distinct {
			cross, okTies := CrossCount(&ra, &rb)
			if okTies != !wantTied {
				t.Fatalf("trial %d: CrossCount ok=%v, want tied=%v (n1=%d n2=%d)", trial, okTies, wantTied, n1, n2)
			}
			if okTies && cross != wantCross {
				t.Fatalf("trial %d: CrossCount=%d want %d", trial, cross, wantCross)
			}
			if !wantTied {
				if got := CrossCountNoTies(&ra, &rb); got != wantCross {
					t.Fatalf("trial %d: CrossCountNoTies=%d want %d", trial, got, wantCross)
				}
			}
		}
	}
}

// TestMannWhitneyFromCrossBitMatches asserts the bucket-kernel path produces
// bit-identical results to the general tie-aware merge on tie-free pairs.
func TestMannWhitneyFromCrossBitMatches(t *testing.T) {
	rng := NewRNG(0xC20552)
	checked := 0
	for trial := 0; trial < 300; trial++ {
		n1 := 1 + rng.Intn(80)
		n2 := 1 + rng.Intn(80)
		xs := rankTestSample(rng, n1, 0)
		ys := rankTestSample(rng, n2, 0)
		grid, _ := NewRankGrid(-45, 45, RankGridBuckets)
		var ra, rb RankedSample
		FillRankedSample(grid, xs, &ra)
		FillRankedSample(grid, ys, &rb)
		if !ra.Distinct || !rb.Distinct {
			continue
		}
		cross, ok := CrossCount(&ra, &rb)
		if !ok {
			continue
		}
		checked++
		got := MannWhitneyFromCross(cross, n1, n2)
		want := MannWhitneyUSorted(xs, ys)
		if got != want {
			t.Fatalf("trial %d: MannWhitneyFromCross=%+v want %+v", trial, got, want)
		}
		if gotNT := MannWhitneyFromCross(CrossCountNoTies(&ra, &rb), n1, n2); gotNT != want {
			t.Fatalf("trial %d: no-ties kernel %+v want %+v", trial, gotNT, want)
		}
	}
	if checked < 250 {
		t.Fatalf("only %d tie-free trials; generator is producing unexpected ties", checked)
	}
}

// TestNoTiesMergeKernelsBitMatch drives the specialized merge kernels
// (MannWhitneyUSortedNoTies, KolmogorovSmirnovSortedNoTies) against the
// general kernels: bit-identical results on tie-free input, ok=false exactly
// when a cross-sample tie exists.
func TestNoTiesMergeKernelsBitMatch(t *testing.T) {
	rng := NewRNG(0xC20553)
	bails := 0
	for trial := 0; trial < 500; trial++ {
		n1 := rng.Intn(50)
		n2 := rng.Intn(50)
		xs := rankTestSample(rng, n1, 0)
		ys := rankTestSample(rng, n2, 0)
		if trial%3 == 0 && n1 > 0 && n2 > 0 {
			// Plant a cross-sample tie without breaking within-distinctness.
			ys[rng.Intn(n2)] = xs[rng.Intn(n1)]
			sort.Float64s(ys)
		}
		if !StrictlyIncreasing(xs) || !StrictlyIncreasing(ys) {
			continue
		}
		_, wantTied := crossCountRef(xs, ys)

		mw, ok := MannWhitneyUSortedNoTies(xs, ys)
		if ok == wantTied && n1 > 0 && n2 > 0 {
			t.Fatalf("trial %d: MannWhitneyUSortedNoTies ok=%v, cross ties=%v", trial, ok, wantTied)
		}
		if ok {
			want := MannWhitneyUSorted(xs, ys)
			if n1 == 0 || n2 == 0 {
				if !math.IsNaN(mw.P) || !math.IsNaN(want.P) {
					t.Fatalf("trial %d: empty-sample P not NaN", trial)
				}
			} else if mw != want {
				t.Fatalf("trial %d: MannWhitneyUSortedNoTies=%+v want %+v", trial, mw, want)
			}
		} else {
			bails++
		}

		ks, ok := KolmogorovSmirnovSortedNoTies(xs, ys)
		if ok == wantTied && n1 > 0 && n2 > 0 {
			t.Fatalf("trial %d: KolmogorovSmirnovSortedNoTies ok=%v, cross ties=%v", trial, ok, wantTied)
		}
		if ok && n1 > 0 && n2 > 0 {
			if want := KolmogorovSmirnovSorted(xs, ys); ks != want {
				t.Fatalf("trial %d: KolmogorovSmirnovSortedNoTies=%+v want %+v", trial, ks, want)
			}
		}
	}
	if bails == 0 {
		t.Fatal("no planted cross ties exercised the bail path")
	}
}

// TestRankKernelsZeroAlloc pins the steady-state pair kernels at zero
// allocations per call, in agreement with their //lint:hotpath annotations.
func TestRankKernelsZeroAlloc(t *testing.T) {
	rng := NewRNG(0xC20554)
	xs := rankTestSample(rng, 200, 0)
	ys := rankTestSample(rng, 150, 0)
	grid, _ := NewRankGrid(-45, 45, RankGridBuckets)
	var ra, rb RankedSample
	FillRankedSample(grid, xs, &ra)
	FillRankedSample(grid, ys, &rb)

	if n := testing.AllocsPerRun(100, func() {
		cross, ok := CrossCount(&ra, &rb)
		if !ok {
			t.Fatal("unexpected tie")
		}
		_ = MannWhitneyFromCross(cross, ra.N, rb.N)
		_ = CrossCountNoTies(&ra, &rb)
	}); n != 0 {
		t.Fatalf("bucket kernels allocate %.1f per run, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		if _, ok := MannWhitneyUSortedNoTies(xs, ys); !ok {
			t.Fatal("unexpected tie")
		}
		if _, ok := KolmogorovSmirnovSortedNoTies(xs, ys); !ok {
			t.Fatal("unexpected tie")
		}
	}); n != 0 {
		t.Fatalf("no-ties merge kernels allocate %.1f per run, want 0", n)
	}
}

// TestFillRankedSampleReusesBuffers verifies arena-backed refills don't grow
// or replace caller-provided slices.
func TestFillRankedSampleReusesBuffers(t *testing.T) {
	rng := NewRNG(0xC20555)
	grid, _ := NewRankGrid(-45, 45, 64)
	rs := RankedSample{
		Keys: make([]uint64, 34),
		Buk:  make([]int32, 32),
		Pre:  make([]int32, 65),
	}
	keysPtr := &rs.Keys[0]
	sample := rankTestSample(rng, 32, 0)
	if n := testing.AllocsPerRun(50, func() {
		FillRankedSample(grid, sample, &rs)
	}); n != 0 {
		t.Fatalf("FillRankedSample allocates %.1f per run with adequate buffers, want 0", n)
	}
	if &rs.Keys[0] != keysPtr {
		t.Fatal("FillRankedSample replaced an adequately-sized Keys buffer")
	}
}
