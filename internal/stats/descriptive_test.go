package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almostEq(m, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); !almostEq(v, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", v)
	}
	if sd := StdDev(xs); !almostEq(sd, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", sd)
	}
	if sv := SampleVariance(xs); !almostEq(sv, 32.0/7, 1e-12) {
		t.Errorf("SampleVariance = %v, want %v", sv, 32.0/7)
	}
}

func TestEmptyInputsReturnNaN(t *testing.T) {
	for name, v := range map[string]float64{
		"Mean":           Mean(nil),
		"Variance":       Variance(nil),
		"Median":         Median(nil),
		"Quantile":       Quantile(nil, 0.5),
		"SampleVariance": SampleVariance([]float64{1}),
	} {
		if !math.IsNaN(v) {
			t.Errorf("%s(empty) = %v, want NaN", name, v)
		}
	}
	lo, hi := MinMax(nil)
	if !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Errorf("MinMax(nil) = %v, %v", lo, hi)
	}
}

func TestMedianQuantile(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	if m := Median(xs); !almostEq(m, 3.5, 1e-12) {
		t.Errorf("Median = %v, want 3.5", m)
	}
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("Q0 = %v, want 1", q)
	}
	if q := Quantile(xs, 1); q != 9 {
		t.Errorf("Q1 = %v, want 9", q)
	}
	if q := Quantile([]float64{1, 2, 3, 4}, 0.25); !almostEq(q, 1.75, 1e-12) {
		t.Errorf("Q25 = %v, want 1.75", q)
	}
	if !math.IsNaN(Quantile(xs, -0.1)) || !math.IsNaN(Quantile(xs, 1.1)) {
		t.Error("out-of-range q should be NaN")
	}
	// Quantile must not modify its input.
	if xs[0] != 3 || xs[5] != 9 {
		t.Error("Quantile modified input slice")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("Summary = %+v", s)
	}
	if !almostEq(s.Mean, 3, 1e-12) || !almostEq(s.StdDev, math.Sqrt(2), 1e-12) {
		t.Errorf("Summary moments = %+v", s)
	}
}

// Property: variance is invariant under translation and scales quadratically.
func TestVariancePropertiesQuick(t *testing.T) {
	f := func(raw []float64, shift float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e6 {
				xs = append(xs, v)
			}
		}
		if len(xs) < 2 {
			return true
		}
		if math.IsNaN(shift) || math.IsInf(shift, 0) || math.Abs(shift) > 1e6 {
			shift = 1
		}
		v0 := Variance(xs)
		shifted := make([]float64, len(xs))
		scaled := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + shift
			scaled[i] = 2 * x
		}
		tol := 1e-6 * (1 + v0)
		return almostEq(Variance(shifted), v0, tol) && almostEq(Variance(scaled), 4*v0, 4*tol)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: min <= q25 <= median <= q75 <= max for any sample.
func TestQuantileMonotonicQuick(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Q25 && s.Q25 <= s.Median && s.Median <= s.Q75 && s.Q75 <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
