package stats

import (
	"math"
	"testing"
)

// TestMannWhitneyCrossGateExhaustive checks, for every small size pair and a
// spread of thresholds, that the band decision equals evaluating the exact
// kernel at every possible cross count — the gate's whole contract.
func TestMannWhitneyCrossGateExhaustive(t *testing.T) {
	epsilons := []float64{1e-300, 1e-3, 1e-2, 0.157, 0.5, 1}
	for n1 := 1; n1 <= 14; n1++ {
		for n2 := n1; n2 <= 14; n2++ {
			for _, eps := range epsilons {
				g, ok := NewMannWhitneyCrossGate(n1, n2, eps)
				if !ok {
					t.Fatalf("gate(%d,%d,%g) refused", n1, n2, eps)
				}
				for c := 0; c <= n1*n2; c++ {
					want := MannWhitneyFromCross(c, n1, n2).P >= eps
					if got := g.Contains(c); got != want {
						t.Fatalf("gate(%d,%d,%g).Contains(%d) = %v, exact = %v (band [%d,%d])",
							n1, n2, eps, c, got, want, g.Lo, g.Hi)
					}
				}
			}
		}
	}
}

// TestMannWhitneyCrossGateLarge crosses into the bisection path (product
// above the exhaustive limit) and samples the full cross range plus a dense
// sweep around both boundaries.
func TestMannWhitneyCrossGateLarge(t *testing.T) {
	for _, sz := range [][2]int{{80, 80}, {300, 300}, {97, 211}, {65, 64}} {
		n1, n2 := sz[0], sz[1]
		for _, eps := range []float64{1e-6, 1e-3, 1e-2, 0.2} {
			g, ok := NewMannWhitneyCrossGate(n1, n2, eps)
			if !ok {
				t.Fatalf("gate(%d,%d,%g) refused", n1, n2, eps)
			}
			total := n1 * n2
			check := func(c int) {
				if c < 0 || c > total {
					return
				}
				want := MannWhitneyFromCross(c, n1, n2).P >= eps
				if got := g.Contains(c); got != want {
					t.Fatalf("gate(%d,%d,%g).Contains(%d) = %v, exact = %v (band [%d,%d])",
						n1, n2, eps, c, got, want, g.Lo, g.Hi)
				}
			}
			for c := 0; c <= total; c += 997 {
				check(c)
			}
			for d := -200; d <= 200; d++ {
				check(g.Lo + d)
				check(g.Hi + d)
			}
		}
	}
}

// TestMannWhitneyCrossGateDegenerate pins the empty-sample and empty-band
// cases.
func TestMannWhitneyCrossGateDegenerate(t *testing.T) {
	if _, ok := NewMannWhitneyCrossGate(0, 5, 0.001); ok {
		t.Fatal("gate with an empty sample should refuse (P is NaN)")
	}
	g, ok := NewMannWhitneyCrossGate(10, 10, math.Nextafter(1, 2))
	if !ok {
		t.Fatal("empty band should still be a usable gate")
	}
	for c := 0; c <= 100; c++ {
		if g.Contains(c) {
			t.Fatalf("epsilon above 1: cross %d must not pass", c)
		}
	}
}

// TestMannWhitneyCrossGateDecideRange checks the interval decision against
// membership of every value in the interval.
func TestMannWhitneyCrossGateDecideRange(t *testing.T) {
	g, ok := NewMannWhitneyCrossGate(30, 40, 0.01)
	if !ok {
		t.Fatal("gate refused")
	}
	total := 30 * 40
	for lo := 0; lo <= total; lo += 7 {
		for _, w := range []int{0, 1, 5, 40, 400} {
			hi := lo + w
			if hi > total {
				hi = total
			}
			pass, decided := g.DecideRange(lo, hi)
			allIn, anyIn := true, false
			for c := lo; c <= hi; c++ {
				if g.Contains(c) {
					anyIn = true
				} else {
					allIn = false
				}
			}
			switch {
			case decided && pass && !allIn:
				t.Fatalf("DecideRange(%d,%d) passed but interval leaves the band", lo, hi)
			case decided && !pass && anyIn:
				t.Fatalf("DecideRange(%d,%d) failed but interval touches the band", lo, hi)
			case !decided && (allIn || !anyIn):
				t.Fatalf("DecideRange(%d,%d) undecided but interval is uniform", lo, hi)
			}
		}
	}
}

// TestCrossBounds checks on random distinct samples that the bound interval
// contains the exact cross count, on healthy and degenerate (single-bucket)
// grids alike.
func TestCrossBounds(t *testing.T) {
	rng := NewRNG(7)
	for trial := 0; trial < 200; trial++ {
		buckets := []int{1, 8, 256, 2048}[trial%4]
		grid, ok := NewRankGrid(0, 1, buckets)
		if !ok {
			t.Fatal("grid refused")
		}
		n1, n2 := 1+int(rng.Uint64()%50), 1+int(rng.Uint64()%50)
		xs := distinctSorted(rng, n1)
		ys := distinctSorted(rng, n2)
		var a, b RankedSample
		FillRankedSample(grid, xs, &a)
		FillRankedSample(grid, ys, &b)
		lo, hi := CrossBounds(&a, &b)
		cross := CrossCountNoTies(&a, &b)
		if cross < lo || cross > hi {
			t.Fatalf("trial %d: cross %d outside bounds [%d,%d]", trial, cross, lo, hi)
		}
		if lo < 0 || hi > n1*n2 {
			t.Fatalf("trial %d: bounds [%d,%d] outside [0,%d]", trial, lo, hi, n1*n2)
		}
	}
}

func distinctSorted(rng *RNG, n int) []float64 {
	seen := map[float64]bool{}
	out := make([]float64, 0, n)
	for len(out) < n {
		v := rng.Float64()
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	// insertion sort: n is small
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
