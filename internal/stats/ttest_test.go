package stats

import (
	"math"
	"testing"
)

func TestWelchTIdenticalSamples(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	res := WelchT(xs, xs)
	if !almostEq(res.T, 0, 1e-12) || !almostEq(res.P, 1, 1e-9) {
		t.Errorf("identical samples: %+v", res)
	}
}

func TestWelchTKnownValue(t *testing.T) {
	// Reference values computed independently (hand Welch formulas):
	// t = -2.70778, df = 26.9527; p ~ 0.0116 at that df.
	a := []float64{27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6, 23.1, 19.6, 19.0, 21.7, 21.4}
	b := []float64{27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9, 22.1, 22.9, 30.5}
	res := WelchT(a, b)
	if !almostEq(res.T, -2.7077777791033206, 1e-9) {
		t.Errorf("t = %v, want -2.70778", res.T)
	}
	if !almostEq(res.DF, 26.952746503270305, 1e-9) {
		t.Errorf("df = %v, want 26.9527", res.DF)
	}
	if !almostEq(res.P, 0.0116, 0.001) {
		t.Errorf("p = %v, want ~0.0116", res.P)
	}
}

func TestWelchTDegenerate(t *testing.T) {
	if res := WelchT([]float64{1}, []float64{2, 3}); !math.IsNaN(res.P) {
		t.Errorf("short sample should be NaN: %+v", res)
	}
	// Zero variance, equal means.
	if res := WelchT([]float64{5, 5, 5}, []float64{5, 5}); res.P != 1 {
		t.Errorf("constant equal samples: %+v", res)
	}
	// Zero variance, different means.
	if res := WelchT([]float64{5, 5, 5}, []float64{7, 7}); res.P != 0 {
		t.Errorf("constant different samples: %+v", res)
	}
}

func TestWelchTAntisymmetric(t *testing.T) {
	rng := NewRNG(12)
	xs := make([]float64, 40)
	ys := make([]float64, 60)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	for i := range ys {
		ys[i] = 2 * rng.NormFloat64()
	}
	a, b := WelchT(xs, ys), WelchT(ys, xs)
	if !almostEq(a.T, -b.T, 1e-12) || !almostEq(a.P, b.P, 1e-12) {
		t.Errorf("not antisymmetric: %+v vs %+v", a, b)
	}
}

func TestStudentTTwoSidedPKnownValues(t *testing.T) {
	// t distribution with large df approaches the normal.
	if p := StudentTTwoSidedP(1.96, 1e6); !almostEq(p, 0.05, 1e-3) {
		t.Errorf("large-df p = %v, want ~0.05", p)
	}
	// df=1 (Cauchy): P(|T| >= 1) = 0.5.
	if p := StudentTTwoSidedP(1, 1); !almostEq(p, 0.5, 1e-9) {
		t.Errorf("Cauchy p = %v, want 0.5", p)
	}
	// df=2: P(|T| >= 4.303) = 0.05.
	if p := StudentTTwoSidedP(4.302652729911275, 2); !almostEq(p, 0.05, 1e-6) {
		t.Errorf("df=2 p = %v, want 0.05", p)
	}
	if p := StudentTTwoSidedP(0, 5); !almostEq(p, 1, 1e-12) {
		t.Errorf("t=0 p = %v, want 1", p)
	}
	if p := StudentTTwoSidedP(math.Inf(1), 5); p != 0 {
		t.Errorf("t=Inf p = %v", p)
	}
	if !math.IsNaN(StudentTTwoSidedP(1, 0)) {
		t.Error("df=0 should be NaN")
	}
}

func TestWelchTFalsePositiveRate(t *testing.T) {
	rng := NewRNG(13)
	trials, sig := 400, 0
	for tr := 0; tr < trials; tr++ {
		xs := make([]float64, 30)
		ys := make([]float64, 50)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		for i := range ys {
			ys[i] = 3 * rng.NormFloat64() // unequal variances on purpose
		}
		if WelchT(xs, ys).P < 0.05 {
			sig++
		}
	}
	rate := float64(sig) / float64(trials)
	if rate > 0.095 {
		t.Errorf("null rejection rate %v at alpha=0.05", rate)
	}
}
