package stats

import (
	"math"
	"testing"
)

func TestMannKendallMonotoneIncreasing(t *testing.T) {
	xs := []float64{1, 2, 3, 5, 8, 13, 21, 34}
	res := MannKendall(xs)
	n := len(xs)
	if res.S != n*(n-1)/2 {
		t.Errorf("S = %d, want all pairs concordant (%d)", res.S, n*(n-1)/2)
	}
	if res.Tau != 1 {
		t.Errorf("tau = %v, want 1", res.Tau)
	}
	if res.P > 0.01 {
		t.Errorf("p = %v, want significant", res.P)
	}
	if res.Slope <= 0 {
		t.Errorf("slope = %v, want positive", res.Slope)
	}
}

func TestMannKendallMonotoneDecreasing(t *testing.T) {
	xs := []float64{900, 700, 650, 500, 420, 300, 150, 80}
	res := MannKendall(xs)
	if res.Tau != -1 {
		t.Errorf("tau = %v, want -1", res.Tau)
	}
	if res.P > 0.01 {
		t.Errorf("p = %v, want significant", res.P)
	}
	if res.Slope >= 0 {
		t.Errorf("slope = %v, want negative", res.Slope)
	}
}

func TestMannKendallNoTrend(t *testing.T) {
	rng := NewRNG(51)
	trials, sig := 300, 0
	for tr := 0; tr < trials; tr++ {
		xs := make([]float64, 12)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		if MannKendall(xs).P < 0.05 {
			sig++
		}
	}
	if rate := float64(sig) / float64(trials); rate > 0.09 {
		t.Errorf("null rejection rate %v", rate)
	}
}

func TestMannKendallConstantSeries(t *testing.T) {
	res := MannKendall([]float64{5, 5, 5, 5, 5})
	if res.S != 0 || res.Z != 0 || res.P != 1 {
		t.Errorf("constant series: %+v", res)
	}
	if res.Slope != 0 {
		t.Errorf("constant slope = %v", res.Slope)
	}
}

func TestMannKendallShortSeries(t *testing.T) {
	if res := MannKendall([]float64{1, 2}); !math.IsNaN(res.P) {
		t.Errorf("short series should be NaN: %+v", res)
	}
}

func TestMannKendallTheilSenRobustSlope(t *testing.T) {
	// Linear slope 2 with one wild outlier: Theil-Sen stays near 2.
	xs := []float64{0, 2, 4, 6, 800, 10, 12, 14, 16}
	res := MannKendall(xs)
	if math.Abs(res.Slope-2) > 0.8 {
		t.Errorf("Theil-Sen slope = %v, want ~2 despite the outlier", res.Slope)
	}
}
