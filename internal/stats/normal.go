package stats

import "math"

// NormalCDF returns P(Z <= z) for a standard normal Z.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// NormalSF returns the survival function P(Z > z), computed to preserve
// precision in the far tail.
func NormalSF(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// TwoSidedP returns the two-sided p-value for a standard normal test
// statistic z: P(|Z| >= |z|).
func TwoSidedP(z float64) float64 {
	p := 2 * NormalSF(math.Abs(z))
	if p > 1 {
		p = 1
	}
	return p
}

// TwoSidedPGate answers the threshold comparison TwoSidedP(z) <= alpha by a
// |z| compare against a precomputed critical band, skipping the erfc on the
// hot path. The construction bit-bisects the actual TwoSidedP implementation
// — not an analytic quantile — so the fast decision is the exact decision:
// hi is a float where TwoSidedP(hi) <= alpha was VERIFIED (any |z| > hi
// passes by monotonicity), lo one where TwoSidedP(lo) > alpha was verified
// (any |z| < lo fails), and the narrow [lo, hi] band — a few thousand ULPs
// guarding against sub-ULP wiggles in erfc — evaluates TwoSidedP directly.
// NaN z falls into the band and inherits TwoSidedP's NaN semantics (the
// comparison is false), matching the ungated code path.
type TwoSidedPGate struct {
	lo, hi float64
	alpha  float64
}

// NewTwoSidedPGate builds the gate for one alpha. Cost: ~70 TwoSidedP
// evaluations, amortized over every LE call at that threshold.
func NewTwoSidedPGate(alpha float64) TwoSidedPGate {
	pred := func(z float64) bool { return TwoSidedP(z) <= alpha }
	g := TwoSidedPGate{alpha: alpha}
	if pred(0) {
		// alpha >= 1: every z passes. lo below zero never triggers.
		g.lo, g.hi = -1, 0
		return g
	}
	if !pred(math.MaxFloat64) {
		// alpha below every representable p (alpha < 0, or 0 with a tail
		// that never underflows): no finite z passes; only +Inf reaches the
		// band for exact evaluation.
		g.lo, g.hi = math.MaxFloat64, math.Inf(1)
		return g
	}
	// Bit-bisect on the non-negative float line (bit order = value order):
	// invariant pred(hi) true, pred(lo) false.
	ulo, uhi := math.Float64bits(0), math.Float64bits(math.MaxFloat64)
	for uhi-ulo > 1 {
		mid := ulo + (uhi-ulo)/2
		if pred(math.Float64frombits(mid)) {
			uhi = mid
		} else {
			ulo = mid
		}
	}
	zc := math.Float64frombits(uhi)
	// Widen to a verified guard band: outside it the decision is trusted to
	// monotonicity with thousands of ULPs to spare; inside it LE evaluates
	// TwoSidedP exactly.
	hi := zc * (1 + 1e-12)
	for !pred(hi) {
		hi = math.Nextafter(hi*(1+1e-12), math.Inf(1))
	}
	lo := math.Float64frombits(ulo) * (1 - 1e-12)
	for lo > 0 && pred(lo) {
		lo = math.Nextafter(lo*(1-1e-12), 0)
	}
	g.lo, g.hi = lo, hi
	return g
}

// LE reports TwoSidedP(z) <= alpha, bit-identically to evaluating it.
//
//lint:hotpath
func (g TwoSidedPGate) LE(z float64) bool {
	az := math.Abs(z)
	if az > g.hi {
		return true
	}
	if az < g.lo {
		return false
	}
	return TwoSidedP(az) <= g.alpha
}

// TwoSidedPGEGate answers TwoSidedP(z) >= alpha — the similarity-gate
// direction, where a LARGE p passes — by a |z| compare against verified
// thresholds, the mirror image of TwoSidedPGate. Because TwoSidedP is
// nonincreasing in |z|, small |z| passes: any |z| <= passLo passes (verified
// with margin), any |z| >= failHi fails (verified with margin), and the
// narrow band between them evaluates TwoSidedP directly. Unlike the LE gate
// it additionally decides whole |z| INTERVALS: when a caller only knows the
// statistic lies in [azMin, azMax], DecideRange settles the threshold
// comparison for every point at once or reports the interval undecidable.
// NaN z falls through both compares into the exact evaluation, inheriting
// TwoSidedP's NaN semantics (the comparison is false).
type TwoSidedPGEGate struct {
	passLo, failHi float64
	alpha          float64
}

// NewTwoSidedPGEGate builds the gate for one alpha. Cost: ~70 TwoSidedP
// evaluations, amortized over every decision at that threshold.
func NewTwoSidedPGEGate(alpha float64) TwoSidedPGEGate {
	pred := func(z float64) bool { return TwoSidedP(z) >= alpha }
	g := TwoSidedPGEGate{alpha: alpha}
	if !pred(0) {
		// alpha above every p: nothing passes. passLo below zero never
		// triggers; failHi zero rejects every non-NaN |z| immediately.
		g.passLo, g.failHi = -1, 0
		return g
	}
	if pred(math.MaxFloat64) {
		// alpha at or below the far tail's underflowed p: every finite and
		// infinite |z| passes (TwoSidedP only shrinks toward 0 >= alpha).
		g.passLo, g.failHi = math.Inf(1), math.Inf(1)
		return g
	}
	// Bit-bisect on the non-negative float line (bit order = value order):
	// invariant pred(lo) true, pred(hi) false.
	ulo, uhi := math.Float64bits(0), math.Float64bits(math.MaxFloat64)
	for uhi-ulo > 1 {
		mid := ulo + (uhi-ulo)/2
		if pred(math.Float64frombits(mid)) {
			ulo = mid
		} else {
			uhi = mid
		}
	}
	// Widen to a verified guard band, exactly as TwoSidedPGate does: outside
	// it the decision trusts monotonicity with thousands of ULPs to spare;
	// inside it the gate evaluates TwoSidedP exactly.
	passLo := math.Float64frombits(ulo) * (1 - 1e-12)
	for passLo > 0 && !pred(passLo) {
		passLo = math.Nextafter(passLo*(1-1e-12), 0)
	}
	failHi := math.Float64frombits(uhi) * (1 + 1e-12)
	for pred(failHi) {
		failHi = math.Nextafter(failHi*(1+1e-12), math.Inf(1))
	}
	g.passLo, g.failHi = passLo, failHi
	return g
}

// GE reports TwoSidedP(z) >= alpha, bit-identically to evaluating it.
//
//lint:hotpath
func (g TwoSidedPGEGate) GE(z float64) bool {
	az := math.Abs(z)
	if az <= g.passLo {
		return true
	}
	if az >= g.failHi {
		return false
	}
	return TwoSidedP(az) >= g.alpha
}

// DecideRange settles TwoSidedP(z) >= alpha for every |z| in [azMin, azMax]
// at once: pass when the whole interval sits in the verified pass region,
// fail when it sits wholly in the verified fail region, and decided=false
// when it touches the guard band or straddles the boundary — the caller must
// then resolve the exact statistic. Callers pass azMin <= azMax; a NaN
// endpoint is undecidable.
//
//lint:hotpath
func (g TwoSidedPGEGate) DecideRange(azMin, azMax float64) (pass, decided bool) {
	if azMax <= g.passLo {
		return true, true
	}
	if azMin >= g.failHi {
		return false, true
	}
	return false, false
}

// NormalQuantile returns the z such that NormalCDF(z) = p, for p in (0, 1).
// It uses the Beasley-Springer-Moro / Acklam rational approximation, accurate
// to about 1e-9, which is ample for threshold calibration. It returns ±Inf at
// the endpoints and NaN outside [0, 1].
func NormalQuantile(p float64) float64 {
	switch {
	case math.IsNaN(p) || p < 0 || p > 1:
		return math.NaN()
	case p == 0: //lint:floateq-ok exact-tail-boundary
		return math.Inf(-1)
	case p == 1: //lint:floateq-ok exact-tail-boundary
		return math.Inf(1)
	}

	// Coefficients for the central and tail rational approximations.
	a := [6]float64{
		-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00,
	}
	b := [5]float64{
		-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01,
	}
	c := [6]float64{
		-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00,
	}
	d := [4]float64{
		7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00,
	}

	const pLow = 0.02425
	var z float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		z = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		z = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		z = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}

	// One Halley refinement step sharpens the approximation. In the extreme
	// tails exp(z^2/2) overflows and the step degenerates to Inf/Inf = NaN;
	// the rational approximation is already at float64's limit there, so a
	// non-finite correction is skipped rather than applied.
	e := NormalCDF(z) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(z*z/2)
	if h := u / (1 + z*u/2); !math.IsNaN(h) && !math.IsInf(h, 0) {
		z -= h
	}
	return z
}
