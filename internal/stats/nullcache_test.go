package stats

import (
	"math"
	"sync"
	"testing"
)

// TestPairNullCachePValueMatchesEstimator asserts the cache's binary-search
// p-value is exactly MonteCarloP's add-one estimator over the same key-seeded
// stream: the cache changes where the null sample lives, not what it is.
func TestPairNullCachePValueMatchesEstimator(t *testing.T) {
	const seed, worlds = 42, 499
	c := NewPairNullCache(seed, worlds, 64)
	for _, tc := range []struct {
		n1, n2, pooled int
		observed       float64
	}{
		{300, 300, 180, 0.5},
		{300, 300, 180, 2.0},
		{300, 300, 180, 9.0},
		{120, 500, 77, 1.3},
		{500, 120, 77, 1.3}, // normalized to the previous key
		{50, 50, 5, 0.0},
	} {
		got, _ := c.PValue(tc.n1, tc.n2, tc.pooled, tc.observed)
		n1, n2 := tc.n1, tc.n2
		if n1 > n2 {
			n1, n2 = n2, n1
		}
		rng := NewRNG(nullCacheSeed(seed, pairNullKey{n1: n1, n2: n2, pooledPositives: tc.pooled}))
		pooledRate := float64(tc.pooled) / float64(n1+n2)
		want := MonteCarloP(tc.observed, worlds, PairNullSimulator(rng, n1, n2, pooledRate))
		if got != want {
			t.Errorf("PValue(%d,%d,%d,%v) = %v, want estimator's %v",
				tc.n1, tc.n2, tc.pooled, tc.observed, got, want)
		}
	}
}

// TestPairNullCacheDeterministicConcurrent hammers one cache from many
// goroutines and asserts every answer matches a serial reference cache: entry
// values must not depend on which goroutine simulates them or on arrival
// order.
func TestPairNullCacheDeterministicConcurrent(t *testing.T) {
	const seed, worlds = 7, 199
	keys := []struct{ n1, n2, pooled int }{
		{300, 300, 100}, {300, 300, 200}, {250, 310, 150},
		{100, 100, 50}, {400, 200, 333}, {80, 90, 60},
	}
	taus := []float64{0.1, 0.7, 1.5, 3.0, 6.0}

	ref := NewPairNullCache(seed, worlds, 64)
	want := map[[4]float64]float64{}
	for _, k := range keys {
		for _, tau := range taus {
			p, _ := ref.PValue(k.n1, k.n2, k.pooled, tau)
			want[[4]float64{float64(k.n1), float64(k.n2), float64(k.pooled), tau}] = p
		}
	}

	c := NewPairNullCache(seed, worlds, 64)
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine walks the keys from a different starting offset,
			// so insertion races cover every key.
			for i := range keys {
				k := keys[(i+g)%len(keys)]
				for _, tau := range taus {
					p, _ := c.PValue(k.n1, k.n2, k.pooled, tau)
					if p != want[[4]float64{float64(k.n1), float64(k.n2), float64(k.pooled), tau}] {
						errs <- "concurrent p-value diverged from serial reference"
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestPairNullCacheStatsAccounting checks the hit/miss contract — exactly one
// miss per key residency — and that eviction under a tiny capacity both
// counts and re-simulates evicted entries to identical values.
func TestPairNullCacheStatsAccounting(t *testing.T) {
	c := NewPairNullCache(3, 99, 16) // 16 entries -> one per shard
	if p1, hit := c.PValue(300, 300, 150, 1.0); hit {
		t.Error("first lookup reported a hit")
	} else if p2, hit2 := c.PValue(300, 300, 150, 1.0); !hit2 || p2 != p1 {
		t.Errorf("second lookup: hit=%v p=%v, want hit with p=%v", hit2, p2, p1)
	}
	if hits, misses, _ := c.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats after two lookups = (%d hits, %d misses), want (1, 1)", hits, misses)
	}

	// Flood with distinct keys: with one slot per shard, collisions must
	// evict. Record each key's p-value on first contact, then replay — every
	// re-simulated entry must reproduce the original exactly.
	first := map[int]float64{}
	for k := 0; k < 64; k++ {
		p, _ := c.PValue(200+k, 300, 100+k, 2.0)
		first[k] = p
	}
	_, _, evictions := c.Stats()
	if evictions == 0 {
		t.Fatal("64 keys through 16 slots caused no evictions")
	}
	for k := 0; k < 64; k++ {
		if p, _ := c.PValue(200+k, 300, 100+k, 2.0); p != first[k] {
			t.Errorf("key %d: p after eviction churn = %v, want original %v", k, p, first[k])
		}
	}
}

// TestPairNullCacheSeedLiveness asserts the cache seed actually reaches the
// simulation streams: across several seeds, some mid-distribution p-value
// must differ (an extreme tau would pin p at 1/(m+1) under every seed and
// prove nothing).
func TestPairNullCacheSeedLiveness(t *testing.T) {
	var ps []float64
	for seed := uint64(1); seed <= 4; seed++ {
		c := NewPairNullCache(seed, 199, 16)
		p, _ := c.PValue(300, 300, 180, 1.0) // tau = 1: well inside the null bulk
		ps = append(ps, p)
	}
	for _, p := range ps[1:] {
		if p != ps[0] {
			return
		}
	}
	t.Fatalf("p-values identical across seeds %v; cache seeding looks dead", ps)
}

// TestPairNullCacheDisabledWorlds pins the degenerate contract: a cache built
// with zero worlds answers p = 1, never a hit.
func TestPairNullCacheDisabledWorlds(t *testing.T) {
	c := NewPairNullCache(1, 0, 16)
	if p, hit := c.PValue(10, 10, 5, 3.0); p != 1 || hit {
		t.Errorf("zero-world cache answered (%v, %v), want (1, false)", p, hit)
	}
}

// TestMannWhitneySeparatedPBounds asserts the closed-form separated-sample
// p-value is a true upper bound on the exact U test whenever the two samples'
// ranges are disjoint — the soundness fact the audit's conservative
// Mann–Whitney summary bound relies on — and that it is exact for tie-free
// separated samples.
func TestMannWhitneySeparatedPBounds(t *testing.T) {
	for _, tc := range []struct{ n1, n2 int }{
		{5, 5}, {10, 30}, {40, 40}, {200, 300}, {1, 50},
	} {
		bound := MannWhitneySeparatedP(tc.n1, tc.n2)
		if math.IsNaN(bound) || bound <= 0 || bound > 1 {
			t.Fatalf("SeparatedP(%d,%d) = %v", tc.n1, tc.n2, bound)
		}
		// Tie-free separated samples: exact equality with the real test.
		lo := make([]float64, tc.n1)
		hi := make([]float64, tc.n2)
		for i := range lo {
			lo[i] = float64(i)
		}
		for i := range hi {
			hi[i] = 1e6 + float64(i)
		}
		if p := MannWhitneyU(lo, hi).P; math.Abs(p-bound) > 1e-12 {
			t.Errorf("(%d,%d) tie-free: exact p = %v, bound = %v", tc.n1, tc.n2, p, bound)
		}
		// Heavy internal ties shrink the null variance and push |z| further
		// out: the exact p must stay at or below the bound.
		for i := range lo {
			lo[i] = float64(i % 2)
		}
		for i := range hi {
			hi[i] = 1e6 + float64(i%3)
		}
		if p := MannWhitneyU(lo, hi).P; p > bound+1e-12 {
			t.Errorf("(%d,%d) tied: exact p = %v exceeds bound %v", tc.n1, tc.n2, p, bound)
		}
	}
	if !math.IsNaN(MannWhitneySeparatedP(0, 5)) || !math.IsNaN(MannWhitneySeparatedP(5, 0)) {
		t.Error("empty sample must yield NaN")
	}
}

// TestKolmogorovSmirnovSeparatedPExact asserts the closed form equals the
// real KS test on range-disjoint samples, where D is exactly 1.
func TestKolmogorovSmirnovSeparatedPExact(t *testing.T) {
	for _, tc := range []struct{ n1, n2 int }{
		{5, 5}, {10, 30}, {40, 40}, {100, 250},
	} {
		bound := KolmogorovSmirnovSeparatedP(tc.n1, tc.n2)
		lo := make([]float64, tc.n1)
		hi := make([]float64, tc.n2)
		for i := range lo {
			lo[i] = float64(i)
		}
		for i := range hi {
			hi[i] = 1e6 + float64(i)
		}
		res := KolmogorovSmirnov(lo, hi)
		if res.D != 1 {
			t.Fatalf("(%d,%d): separated D = %v, want 1", tc.n1, tc.n2, res.D)
		}
		if math.Abs(res.P-bound) > 1e-12 {
			t.Errorf("(%d,%d): exact p = %v, closed form = %v", tc.n1, tc.n2, res.P, bound)
		}
	}
	if !math.IsNaN(KolmogorovSmirnovSeparatedP(0, 5)) {
		t.Error("empty sample must yield NaN")
	}
}
