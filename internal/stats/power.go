package stats

import "math"

// Power analysis for the two-proportion comparison underlying the pairwise
// audit: how large must two regions be before a given rate gap is
// detectable? This is the quantitative form of the paper's Table 3
// discussion — "an average of only 42 fast food outlets per region ... is
// not significant".

// TwoProportionPower returns the probability that a two-sided pooled z-test
// at significance alpha rejects H0 when the true rates are p1 and p2 with
// sample sizes n1 and n2 (normal approximation). Degenerate inputs return
// NaN.
func TwoProportionPower(p1 float64, n1 int, p2 float64, n2 int, alpha float64) float64 {
	if n1 <= 0 || n2 <= 0 || alpha <= 0 || alpha >= 1 ||
		p1 < 0 || p1 > 1 || p2 < 0 || p2 > 1 {
		return math.NaN()
	}
	zCrit := NormalQuantile(1 - alpha/2)
	pBar := (p1*float64(n1) + p2*float64(n2)) / float64(n1+n2)
	se0 := math.Sqrt(pBar * (1 - pBar) * (1/float64(n1) + 1/float64(n2)))
	se1 := math.Sqrt(p1*(1-p1)/float64(n1) + p2*(1-p2)/float64(n2))
	if se1 == 0 { //lint:floateq-ok degenerate-variance-sentinel
		if p1 != p2 { //lint:floateq-ok degenerate-variance-sentinel
			return 1
		}
		return alpha
	}
	delta := math.Abs(p1 - p2)
	// Reject when |Z| > zCrit under the null SE; under the alternative the
	// statistic is centered at delta/se0 with spread se1/se0.
	upper := NormalSF((zCrit*se0 - delta) / se1)
	lower := NormalCDF((-zCrit*se0 - delta) / se1)
	return upper + lower
}

// SampleSizeForGap returns the smallest per-region sample size n (equal
// sizes) at which the two-sided test at significance alpha detects the gap
// between p1 and p2 with at least the target power. It returns -1 when the
// inputs are degenerate (no gap, bad alpha/power).
func SampleSizeForGap(p1, p2, alpha, power float64) int {
	if p1 == p2 || alpha <= 0 || alpha >= 1 || power <= 0 || power >= 1 || //lint:floateq-ok degenerate-input-guard
		p1 < 0 || p1 > 1 || p2 < 0 || p2 > 1 {
		return -1
	}
	// Closed-form start from the standard approximation, then refine.
	zA := NormalQuantile(1 - alpha/2)
	zB := NormalQuantile(power)
	pBar := (p1 + p2) / 2
	delta := math.Abs(p1 - p2)
	n0 := (zA*math.Sqrt(2*pBar*(1-pBar)) + zB*math.Sqrt(p1*(1-p1)+p2*(1-p2)))
	n := int(math.Ceil(n0 * n0 / (delta * delta)))
	if n < 2 {
		n = 2
	}
	// Walk to the exact boundary of TwoProportionPower.
	for n > 2 && TwoProportionPower(p1, n-1, p2, n-1, alpha) >= power {
		n--
	}
	for TwoProportionPower(p1, n, p2, n, alpha) < power {
		n++
		if n > 1<<28 {
			return -1
		}
	}
	return n
}
