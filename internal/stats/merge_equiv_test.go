package stats

import (
	"math"
	"sort"
	"testing"
)

// referenceMannWhitney is the classic combined-sort Mann–Whitney: concatenate
// both samples, sort once, assign mid-ranks to tie groups in a linear scan.
// It is the specification the merge-rank kernel must match; keeping it in the
// test suite pins MannWhitneyUSorted against an independent implementation
// rather than against itself.
func referenceMannWhitney(xs, ys []float64) MannWhitneyResult {
	n1, n2 := len(xs), len(ys)
	if n1 == 0 || n2 == 0 {
		return MannWhitneyResult{U: math.NaN(), Z: math.NaN(), P: math.NaN()}
	}
	type obs struct {
		v     float64
		first bool
	}
	all := make([]obs, 0, n1+n2)
	for _, v := range xs {
		all = append(all, obs{v, true})
	}
	for _, v := range ys {
		all = append(all, obs{v, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	var rankSum1, tieTerm float64
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v { //lint:floateq-ok exact-tie-grouping
			j++
		}
		t := j - i
		midRank := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			if all[k].first {
				rankSum1 += midRank
			}
		}
		if t > 1 {
			ft := float64(t)
			tieTerm += ft*ft*ft - ft
		}
		i = j
	}
	return mannWhitneyFromRankSum(rankSum1, tieTerm, n1, n2)
}

// randomSample draws n values; with tied=true values land on a coarse integer
// grid so cross- and within-sample ties are common, otherwise they are
// (almost surely) distinct continuous draws.
func randomSample(rng *RNG, n int, tied bool) []float64 {
	out := make([]float64, n)
	for i := range out {
		if tied {
			out[i] = float64(rng.Intn(8))
		} else {
			out[i] = rng.Float64()*2000 - 1000
		}
	}
	return out
}

// TestMannWhitneyMergeMatchesSortReference is the merge-rank property test:
// across random tied and untied samples of varying (including degenerate)
// sizes, MannWhitneyUSorted on pre-sorted inputs agrees with the independent
// combined-sort reference to 1e-12 in U, Z, and P — and MannWhitneyU (which
// delegates to the merge kernel) agrees on the raw samples.
func TestMannWhitneyMergeMatchesSortReference(t *testing.T) {
	rng := NewRNG(0x4E7C4A5E)
	sizes := []int{1, 2, 3, 5, 17, 50, 200}
	for trial := 0; trial < 200; trial++ {
		n1 := sizes[rng.Intn(len(sizes))]
		n2 := sizes[rng.Intn(len(sizes))]
		tied := trial%2 == 0
		xs := randomSample(rng, n1, tied)
		ys := randomSample(rng, n2, tied)

		want := referenceMannWhitney(xs, ys)

		sx := append([]float64(nil), xs...)
		sy := append([]float64(nil), ys...)
		sort.Float64s(sx)
		sort.Float64s(sy)
		got := MannWhitneyUSorted(sx, sy)
		raw := MannWhitneyU(xs, ys)

		for _, c := range []struct {
			name      string
			got, want float64
		}{
			{"U(sorted)", got.U, want.U},
			{"Z(sorted)", got.Z, want.Z},
			{"P(sorted)", got.P, want.P},
			{"U(raw)", raw.U, want.U},
			{"Z(raw)", raw.Z, want.Z},
			{"P(raw)", raw.P, want.P},
		} {
			if math.Abs(c.got-c.want) > 1e-12 {
				t.Fatalf("trial %d (n1=%d n2=%d tied=%v): %s = %v, reference %v",
					trial, n1, n2, tied, c.name, c.got, c.want)
			}
		}
	}
}

// TestKolmogorovSmirnovSortedMatchesUnsorted pins the merge-based KS kernel
// against the public entry point: identical results (bit for bit) on sorted
// copies of random samples, tied and untied.
func TestKolmogorovSmirnovSortedMatchesUnsorted(t *testing.T) {
	rng := NewRNG(0x4B53)
	for trial := 0; trial < 100; trial++ {
		n1 := 1 + rng.Intn(80)
		n2 := 1 + rng.Intn(80)
		tied := trial%2 == 0
		xs := randomSample(rng, n1, tied)
		ys := randomSample(rng, n2, tied)
		want := KolmogorovSmirnov(xs, ys)
		sx := append([]float64(nil), xs...)
		sy := append([]float64(nil), ys...)
		sort.Float64s(sx)
		sort.Float64s(sy)
		got := KolmogorovSmirnovSorted(sx, sy)
		if got.D != want.D || got.P != want.P {
			t.Fatalf("trial %d: sorted KS = %+v, unsorted %+v", trial, got, want)
		}
	}
}

// TestWelchTFromMomentsMatchesRaw pins the moment-cache Welch path against
// the raw-sample entry point.
func TestWelchTFromMomentsMatchesRaw(t *testing.T) {
	rng := NewRNG(0x7E57)
	for trial := 0; trial < 100; trial++ {
		n1 := 2 + rng.Intn(60)
		n2 := 2 + rng.Intn(60)
		xs := randomSample(rng, n1, false)
		ys := randomSample(rng, n2, false)
		want := WelchT(xs, ys)
		got := WelchTFromMoments(
			len(xs), Mean(xs), SampleVariance(xs),
			len(ys), Mean(ys), SampleVariance(ys))
		if got != want {
			t.Fatalf("trial %d: moments Welch = %+v, raw %+v", trial, got, want)
		}
	}
}

// TestPairMonteCarloMatchesClosure verifies the allocation-free Monte-Carlo
// entry points consume the identical RNG stream as the closure-based
// originals: same seed, same p-value, same significance decision, same effort
// stats.
func TestPairMonteCarloMatchesClosure(t *testing.T) {
	const n1, n2 = 180, 240
	const pooled = 0.57
	const m = 499
	for trial := 0; trial < 20; trial++ {
		seed := uint64(0xACED + trial)
		observed := float64(trial) * 0.9

		a := NewRNG(seed)
		b := NewRNG(seed)
		want := MonteCarloP(observed, m, PairNullSimulator(a, n1, n2, pooled))
		got := PairMonteCarloP(b, observed, m, n1, n2, pooled)
		if got != want {
			t.Fatalf("trial %d: PairMonteCarloP = %v, closure %v", trial, got, want)
		}

		a = NewRNG(seed)
		b = NewRNG(seed)
		wp, ws, wst := AdaptiveMonteCarloPStats(observed, m, 0.05, PairNullSimulator(a, n1, n2, pooled))
		gp, gs, gst := AdaptivePairMonteCarloPStats(b, observed, m, 0.05, n1, n2, pooled)
		if gp != wp || gs != ws || gst != wst {
			t.Fatalf("trial %d: adaptive pair MC (%v %v %+v) != closure (%v %v %+v)",
				trial, gp, gs, gst, wp, ws, wst)
		}
	}
}
