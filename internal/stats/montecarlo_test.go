package stats

import (
	"math"
	"testing"
)

func TestMonteCarloPExtremeObservation(t *testing.T) {
	rng := NewRNG(21)
	// Observed value far above anything the null produces.
	p := MonteCarloP(1e9, 999, func() float64 { return rng.Float64() })
	if !almostEq(p, 1.0/1000, 1e-12) {
		t.Errorf("p = %v, want 1/1000", p)
	}
}

func TestMonteCarloPTypicalObservation(t *testing.T) {
	rng := NewRNG(22)
	// Observed at the null median: p should be near 0.5.
	p := MonteCarloP(0.5, 999, func() float64 { return rng.Float64() })
	if p < 0.4 || p > 0.6 {
		t.Errorf("p = %v, want ~0.5", p)
	}
}

func TestMonteCarloPNeverZero(t *testing.T) {
	p := MonteCarloP(math.Inf(1), 99, func() float64 { return 0 })
	if p <= 0 {
		t.Errorf("p = %v, must be positive", p)
	}
	if p2 := MonteCarloP(1, 0, nil); p2 != 1 {
		t.Errorf("m=0 should give p=1, got %v", p2)
	}
}

func TestPairNullSimulatorCalibration(t *testing.T) {
	// Under the null, the Monte-Carlo p-value of a null-generated observation
	// should be approximately uniform: about alpha of trials significant.
	rng := NewRNG(23)
	n1, n2 := 300, 400
	rate := 0.62
	trials := 200
	m := 199
	sig := 0
	for tr := 0; tr < trials; tr++ {
		k1 := rng.Binomial(n1, rate)
		k2 := rng.Binomial(n2, rate)
		obs := PairLRT(k1, n1, k2, n2)
		p := MonteCarloP(obs, m, PairNullSimulator(rng, n1, n2, rate))
		if p <= 0.05 {
			sig++
		}
	}
	frac := float64(sig) / float64(trials)
	if frac > 0.12 {
		t.Errorf("null rejection rate %v at alpha=0.05, want <= ~0.12", frac)
	}
}

func TestPairNullSimulatorPower(t *testing.T) {
	// A genuinely unfair pair should almost always be flagged.
	rng := NewRNG(24)
	n1, n2 := 500, 500
	k1 := 400 // 80% positive rate
	k2 := 200 // 40% positive rate
	pooled := float64(k1+k2) / float64(n1+n2)
	obs := PairLRT(k1, n1, k2, n2)
	p := MonteCarloP(obs, 999, PairNullSimulator(rng, n1, n2, pooled))
	if p > 0.01 {
		t.Errorf("blatant unfairness p = %v, want tiny", p)
	}
}

func TestRegionNullSimulatorCalibration(t *testing.T) {
	rng := NewRNG(25)
	n, N := 200, 5000
	rate := 0.62
	trials := 150
	sig := 0
	for tr := 0; tr < trials; tr++ {
		k := rng.Binomial(n, rate)
		rest := rng.Binomial(N-n, rate)
		obs := RegionVsOutsideLRT(k, n, k+rest, N)
		p := MonteCarloP(obs, 199, RegionNullSimulator(rng, n, N, rate))
		if p <= 0.05 {
			sig++
		}
	}
	frac := float64(sig) / float64(trials)
	if frac > 0.13 {
		t.Errorf("null rejection rate %v, want <= ~0.13", frac)
	}
}
