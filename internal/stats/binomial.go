package stats

import "math"

// BernoulliLogLik returns the log-likelihood of observing k successes in n
// independent Bernoulli trials with success probability rho:
//
//	k*ln(rho) + (n-k)*ln(1-rho)
//
// following the convention 0*ln(0) = 0 so that the maximum-likelihood
// estimate rho = k/n always has a finite likelihood. The binomial coefficient
// is omitted — it cancels in every likelihood ratio the framework computes.
// If rho is 0 (or 1) while k > 0 (or k < n), the likelihood is zero and -Inf
// is returned.
func BernoulliLogLik(k, n int, rho float64) float64 {
	if n < 0 || k < 0 || k > n {
		return math.NaN()
	}
	var ll float64
	if k > 0 {
		if rho <= 0 {
			return math.Inf(-1)
		}
		ll += float64(k) * math.Log(rho)
	}
	if n-k > 0 {
		if rho >= 1 {
			return math.Inf(-1)
		}
		ll += float64(n-k) * math.Log(1-rho)
	}
	return ll
}

// MaxBernoulliLogLik returns the log-likelihood of k successes in n trials at
// the maximum-likelihood estimate rho = k/n.
func MaxBernoulliLogLik(k, n int) float64 {
	if n <= 0 {
		return 0
	}
	return BernoulliLogLik(k, n, float64(k)/float64(n))
}

// LogLikRatio returns the likelihood-ratio test statistic
//
//	tau = -2 * (logL0 - logLa)
//
// which is non-negative whenever the alternative nests the null at their
// respective maxima. Infinite log-likelihoods are handled so that an
// impossible null against a possible alternative yields +Inf.
func LogLikRatio(logL0, logLa float64) float64 {
	if math.IsInf(logL0, -1) && math.IsInf(logLa, -1) {
		return 0
	}
	return -2 * (logL0 - logLa)
}

// PairLRT computes the likelihood-ratio statistic for the paper's pairwise
// test (Section 3.2) from the outcome counts of two regions. Under H0 both
// regions share one positive rate (its MLE is the pooled rate); under Ha each
// region has its own rate (MLE is the local rate).
//
// The group-composition terms of Equations 4 and 5 depend only on region
// composition, not on outcomes, so they appear identically in both hypotheses
// and cancel in the ratio; they are accounted for separately by
// PairCompositionLogLik for callers that need the full likelihood value.
func PairLRT(p1, n1, p2, n2 int) float64 {
	if n1 <= 0 || n2 <= 0 {
		return 0
	}
	pooled := float64(p1+p2) / float64(n1+n2)
	l0 := BernoulliLogLik(p1, n1, pooled) + BernoulliLogLik(p2, n2, pooled)
	la := MaxBernoulliLogLik(p1, n1) + MaxBernoulliLogLik(p2, n2)
	return LogLikRatio(l0, la)
}

// CompositionLogLik returns the log of the composition terms of the paper's
// Equations 4 and 5 for one region: the Bernoulli likelihood of observing
// nG members of the protected group and nV members of the non-protected group
// among the region's n individuals, each at its maximum-likelihood share.
func CompositionLogLik(nG, nV, n int) float64 {
	if n <= 0 {
		return 0
	}
	// Equation 4 uses exponent n(r_i) on the protected share; we follow the
	// standard Bernoulli form with exponent nG (the count observed), which is
	// the form under which the expression is a likelihood.
	return MaxBernoulliLogLik(nG, n) + MaxBernoulliLogLik(nV, n)
}

// PairAlternativeLogLik returns the full log-likelihood of the paper's
// alternative hypothesis (Equation 6) for a pair of regions: the product of
// each region's outcome likelihood at its own rate (Equation 3) and its
// group-composition terms (Equations 4 and 5).
func PairAlternativeLogLik(p1, n1, nG1, nV1, p2, n2, nG2, nV2 int) float64 {
	return MaxBernoulliLogLik(p1, n1) + CompositionLogLik(nG1, nV1, n1) +
		MaxBernoulliLogLik(p2, n2) + CompositionLogLik(nG2, nV2, n2)
}

// RegionVsOutsideLRT computes the likelihood-ratio statistic of Sacharidis et
// al. for one region against everything outside it. p, n are the region's
// positives and count; P, N are the global totals (Equations 1 and 2 of the
// paper). Under H0 a single global rate generates all outcomes; under Ha the
// region and its complement each have their own rate.
func RegionVsOutsideLRT(p, n, P, N int) float64 {
	if n <= 0 || N <= n {
		return 0
	}
	global := float64(P) / float64(N)
	l0 := BernoulliLogLik(p, n, global) + BernoulliLogLik(P-p, N-n, global)
	la := MaxBernoulliLogLik(p, n) + MaxBernoulliLogLik(P-p, N-n)
	return LogLikRatio(l0, la)
}
