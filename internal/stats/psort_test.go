package stats

import (
	"slices"
	"testing"
)

// TestParallelSortFloat64s compares the parallel sort against slices.Sort on
// random inputs across worker counts and sizes straddling the sequential
// threshold, including heavy-tie inputs (equal values are indistinguishable,
// so the sequences must be bit-identical).
func TestParallelSortFloat64s(t *testing.T) {
	rng := NewRNG(11)
	for _, n := range []int{0, 1, 2, 100, parallelSortThreshold - 1, parallelSortThreshold, 3*parallelSortThreshold + 17} {
		for _, workers := range []int{1, 2, 3, 4, 8} {
			for _, tied := range []bool{false, true} {
				v := make([]float64, n)
				for i := range v {
					if tied {
						v[i] = float64(rng.Uint64() % 7)
					} else {
						v[i] = rng.Float64()
					}
				}
				want := append([]float64(nil), v...)
				slices.Sort(want)
				ParallelSortFloat64s(v, workers)
				if !slices.Equal(v, want) {
					t.Fatalf("n=%d workers=%d tied=%v: parallel sort differs", n, workers, tied)
				}
			}
		}
	}
}

// TestBenjaminiHochbergWorkersMatches fuzzes the parallel BH against the
// sequential implementation, with tie-heavy p-value sets sized to force the
// parallel path.
func TestBenjaminiHochbergWorkersMatches(t *testing.T) {
	rng := NewRNG(23)
	for trial := 0; trial < 20; trial++ {
		n := parallelSortThreshold + int(rng.Uint64()%5000)
		pv := make([]float64, n)
		for i := range pv {
			if rng.Uint64()%3 == 0 {
				pv[i] = float64(rng.Uint64()%50) / 1000 // deliberate ties near the cut
			} else {
				pv[i] = rng.Float64()
			}
		}
		for _, q := range []float64{0, 0.01, 0.05, 0.2, 1} {
			want := BenjaminiHochberg(pv, q)
			for _, workers := range []int{1, 2, 4, 8} {
				got := BenjaminiHochbergWorkers(pv, q, workers)
				if !slices.Equal(got, want) {
					t.Fatalf("trial %d q=%g workers=%d: masks differ", trial, q, workers)
				}
			}
		}
	}
}
