// Package stats implements the statistical machinery of the LC-spatial-
// fairness framework: a deterministic random number generator, descriptive
// statistics, the normal distribution, the Mann–Whitney U test, the
// two-proportion z-test, binomial likelihoods and likelihood-ratio
// statistics, Monte-Carlo significance testing, and reservoir sampling.
//
// Everything is built from scratch on the standard library so experiments are
// reproducible bit-for-bit from a seed.
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random number generator
// (PCG-XSH-RR 64/32). Distinct streams are selected by the seed; the
// experiments derive one stream per (experiment, lender, grid) tuple so runs
// are reproducible and independent.
//
// RNG is not safe for concurrent use; create one per goroutine.
type RNG struct {
	state uint64
	inc   uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator to the stream identified by seed.
func (r *RNG) Seed(seed uint64) {
	// Derive state and stream from the seed with splitmix64 so that nearby
	// seeds produce unrelated streams.
	s := seed
	r.state = splitmix64(&s)
	r.inc = splitmix64(&s) | 1
	r.Uint32()
}

func splitmix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns the next value in the stream.
func (r *RNG) Uint32() uint32 {
	old := r.state
	r.state = old*6364136223846793005 + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint64 returns a 64-bit value built from two 32-bit draws.
func (r *RNG) Uint64() uint64 {
	return uint64(r.Uint32())<<32 | uint64(r.Uint32())
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation on 32-bit draws is
	// plenty for the sizes used here (n < 2^31).
	if n <= math.MaxInt32 {
		bound := uint32(n)
		threshold := -bound % bound
		for {
			v := r.Uint32()
			if v >= threshold {
				return int(v % bound)
			}
		}
	}
	return int(r.Uint64() % uint64(n))
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool { return r.Float64() < p }

// NormFloat64 returns a standard normal variate (polar Box–Muller, using one
// value per call and discarding the pair's second value for simplicity).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Binomial returns a draw from Binomial(n, p). Small n uses direct Bernoulli
// summation; large n uses the normal approximation with continuity
// correction, clamped to [0, n]. The Monte-Carlo engine draws millions of
// binomials, so the large-n path matters.
func (r *RNG) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	// Exploit symmetry so the approximation quality is governed by min(p,1-p).
	if p > 0.5 {
		return n - r.Binomial(n, 1-p)
	}
	mean := float64(n) * p
	if n <= 64 || mean < 30 {
		k := 0
		for i := 0; i < n; i++ {
			if r.Float64() < p {
				k++
			}
		}
		return k
	}
	sd := math.Sqrt(mean * (1 - p))
	k := int(math.Round(mean + sd*r.NormFloat64()))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}

// Split derives a child generator on an independent stream, advancing the
// parent. Splitting is deterministic: the child's stream is a function of the
// parent's state, so (seed, split order) fully determines every stream. Use
// one Split per goroutine — the rngdiscipline analyzer forbids sharing a
// single *RNG across goroutine-spawning closures, and this is the sanctioned
// way to fan a deterministic experiment out over workers.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

// Shuffle randomly permutes the first n elements using swap, in the manner of
// sort.Slice's swap callback.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Exp returns an exponentially distributed variate with rate 1.
func (r *RNG) Exp() float64 {
	return -math.Log(1 - r.Float64())
}
