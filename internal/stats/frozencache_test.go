package stats

import (
	"sync"
	"testing"
)

// TestFrozenNullCacheMatchesLive checks that a frozen snapshot answers every
// resident key bit-identically to the live cache and to the uncached oracle,
// and misses cleanly on absent keys.
func TestFrozenNullCacheMatchesLive(t *testing.T) {
	const seed, worlds = 42, 199
	c := NewPairNullCache(seed, worlds, 64)
	type key struct{ n1, n2, pos int }
	keys := []key{{10, 20, 7}, {20, 10, 7}, {5, 5, 3}, {100, 120, 44}, {8, 9, 0}}
	for _, k := range keys {
		c.Prewarm(k.n1, k.n2, k.pos)
	}
	f := c.Freeze()
	if f.Len() != 4 { // {10,20,7} and {20,10,7} normalize to one key
		t.Fatalf("frozen entries = %d, want 4", f.Len())
	}
	for _, k := range keys {
		for _, obs := range []float64{-1, 0, 0.5, 3, 1e9} {
			got, ok := f.PValue(k.n1, k.n2, k.pos, obs)
			if !ok {
				t.Fatalf("frozen miss on resident key %+v", k)
			}
			live, _ := c.PValue(k.n1, k.n2, k.pos, obs)
			oracle := NullCacheReferenceP(seed, worlds, k.n1, k.n2, k.pos, obs)
			if got != live || got != oracle {
				t.Fatalf("key %+v obs %g: frozen %v live %v oracle %v", k, obs, got, live, oracle)
			}
		}
	}
	if _, ok := f.PValue(77, 78, 1, 0.5); ok {
		t.Fatal("frozen hit on a key that was never cached")
	}
	// A key inserted after the freeze stays invisible to the snapshot.
	c.Prewarm(77, 78, 1)
	if _, ok := f.PValue(77, 78, 1, 0.5); ok {
		t.Fatal("frozen snapshot grew after Freeze")
	}
}

// TestFrozenNullCacheNil pins the nil/disabled semantics: always a miss.
func TestFrozenNullCacheNil(t *testing.T) {
	var c *PairNullCache
	if f := c.Freeze(); f != nil {
		t.Fatal("nil cache should freeze to nil")
	}
	var f *FrozenNullCache
	if _, ok := f.PValue(1, 2, 1, 0.5); ok {
		t.Fatal("nil frozen cache returned a hit")
	}
	if f.Len() != 0 {
		t.Fatal("nil frozen cache has entries")
	}
}

// TestFrozenNullCacheConcurrentReads hammers one snapshot from many
// goroutines under -race: lookups are read-only, so any write the detector
// sees is a bug.
func TestFrozenNullCacheConcurrentReads(t *testing.T) {
	c := NewPairNullCache(1, 99, 64)
	for n := 10; n < 30; n++ {
		c.Prewarm(n, n+1, n/2)
	}
	f := c.Freeze()
	want, _ := f.PValue(15, 16, 7, 1.5)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				got, ok := f.PValue(15, 16, 7, 1.5)
				if !ok || got != want {
					panic("frozen read changed under concurrency")
				}
			}
		}()
	}
	wg.Wait()
}

// TestFrozenNullCacheZeroAlloc pins the lock-free lookup's allocation-free
// contract (//lint:hotpath backs it statically; this backs it dynamically).
func TestFrozenNullCacheZeroAlloc(t *testing.T) {
	c := NewPairNullCache(3, 99, 64)
	c.Prewarm(50, 60, 20)
	f := c.Freeze()
	allocs := testing.AllocsPerRun(100, func() {
		f.PValue(50, 60, 20, 2.5)
	})
	if allocs != 0 {
		t.Fatalf("frozen PValue allocates %.1f per call", allocs)
	}
}
