package stats

import "testing"

// AdaptiveMonteCarloP must agree with MonteCarloP on the significance
// decision for the same generator stream, and report the exact p-value
// whenever significant.
func TestAdaptiveAgreesWithExact(t *testing.T) {
	for trial := 0; trial < 100; trial++ {
		seed := uint64(1000 + trial)
		n1, n2 := 200, 300
		rate := 0.6
		gen := NewRNG(seed)
		k1 := gen.Binomial(n1, rate)
		// Mix null-like and alternative-like observations.
		k2 := gen.Binomial(n2, rate)
		if trial%3 == 0 {
			k2 = gen.Binomial(n2, 0.35)
		}
		obs := PairLRT(k1, n1, k2, n2)
		m, alpha := 499, 0.05

		exact := MonteCarloP(obs, m, PairNullSimulator(NewRNG(seed+7), n1, n2, rate))
		adaptP, adaptSig := AdaptiveMonteCarloP(obs, m, alpha, PairNullSimulator(NewRNG(seed+7), n1, n2, rate))

		if adaptSig != (exact <= alpha) {
			t.Fatalf("trial %d: adaptive sig=%v, exact p=%v", trial, adaptSig, exact)
		}
		if adaptSig && adaptP != exact {
			t.Fatalf("trial %d: significant p mismatch: %v vs %v", trial, adaptP, exact)
		}
		if !adaptSig && adaptP > 1 {
			t.Fatalf("trial %d: p bound %v > 1", trial, adaptP)
		}
	}
}

func TestAdaptiveEdgeCases(t *testing.T) {
	if p, sig := AdaptiveMonteCarloP(1, 0, 0.05, nil); p != 1 || sig {
		t.Errorf("m=0: p=%v sig=%v", p, sig)
	}
	// Observation above everything: must run the full m and be significant.
	calls := 0
	p, sig := AdaptiveMonteCarloP(1e18, 99, 0.05, func() float64 { calls++; return 0 })
	if !sig || p != 0.01 {
		t.Errorf("extreme observation: p=%v sig=%v", p, sig)
	}
	if calls != 99 {
		t.Errorf("significant path must run all worlds, ran %d", calls)
	}
	// Observation below everything: stops early.
	calls = 0
	_, sig = AdaptiveMonteCarloP(-1, 999, 0.05, func() float64 { calls++; return 0 })
	if sig {
		t.Error("hopeless observation flagged significant")
	}
	if calls >= 999 {
		t.Errorf("early stop did not trigger: %d calls", calls)
	}
}
