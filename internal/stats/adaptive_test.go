package stats

import (
	"fmt"
	"testing"

	"lcsf/internal/testutil"
)

// AdaptiveMonteCarloP must agree with MonteCarloP on the significance
// decision for the same generator stream, and report the exact p-value
// whenever significant.
func TestAdaptiveAgreesWithExact(t *testing.T) {
	for trial := 0; trial < 100; trial++ {
		seed := uint64(1000 + trial)
		n1, n2 := 200, 300
		rate := 0.6
		gen := NewRNG(seed)
		k1 := gen.Binomial(n1, rate)
		// Mix null-like and alternative-like observations.
		k2 := gen.Binomial(n2, rate)
		if trial%3 == 0 {
			k2 = gen.Binomial(n2, 0.35)
		}
		obs := PairLRT(k1, n1, k2, n2)
		m, alpha := 499, 0.05

		exact := MonteCarloP(obs, m, PairNullSimulator(NewRNG(seed+7), n1, n2, rate))
		adaptP, adaptSig := AdaptiveMonteCarloP(obs, m, alpha, PairNullSimulator(NewRNG(seed+7), n1, n2, rate))

		if adaptSig != (exact <= alpha) {
			t.Fatalf("trial %d: adaptive sig=%v, exact p=%v", trial, adaptSig, exact)
		}
		if adaptSig {
			// Same stream, same counts: the significant p-value is exact.
			testutil.InDelta(t, fmt.Sprintf("trial %d significant p", trial), adaptP, exact, 0)
		}
		if !adaptSig && adaptP > 1 {
			t.Fatalf("trial %d: p bound %v > 1", trial, adaptP)
		}
	}
}

func TestAdaptiveEdgeCases(t *testing.T) {
	p0, sig0 := AdaptiveMonteCarloP(1, 0, 0.05, nil)
	if sig0 {
		t.Error("m=0: unexpectedly significant")
	}
	testutil.InDelta(t, "m=0 p-value", p0, 1, 0)
	// Observation above everything: must run the full m and be significant.
	calls := 0
	p, sig := AdaptiveMonteCarloP(1e18, 99, 0.05, func() float64 { calls++; return 0 })
	if !sig {
		t.Errorf("extreme observation not significant (p=%v)", p)
	}
	testutil.InDelta(t, "extreme observation p", p, 0.01, 0)
	if calls != 99 {
		t.Errorf("significant path must run all worlds, ran %d", calls)
	}
	// Observation below everything: stops early.
	calls = 0
	_, sig = AdaptiveMonteCarloP(-1, 999, 0.05, func() float64 { calls++; return 0 })
	if sig {
		t.Error("hopeless observation flagged significant")
	}
	if calls >= 999 {
		t.Errorf("early stop did not trigger: %d calls", calls)
	}
}
