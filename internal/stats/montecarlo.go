package stats

// MonteCarloP estimates the significance of an observed test statistic by
// simulation, following the procedure of Section 3.2: m alternative "worlds"
// are generated under the null hypothesis, the statistic is computed in each,
// and the p-value is the rank of the observed statistic among the simulated
// ones.
//
// simulate must return the test statistic of one freshly simulated world;
// larger statistics mean stronger evidence against the null. The returned
// p-value uses the standard add-one rank estimator
//
//	p = (1 + #{tau_sim >= tau_obs}) / (m + 1)
//
// which is never zero and is exact for exchangeable simulations.
func MonteCarloP(observed float64, m int, simulate func() float64) float64 {
	if m <= 0 {
		return 1
	}
	geq := 0
	for i := 0; i < m; i++ {
		if simulate() >= observed {
			geq++
		}
	}
	return float64(1+geq) / float64(m+1)
}

// MCStats reports the simulation effort one Monte-Carlo p-value estimate
// actually spent — the observability hook behind the audit engine's
// mc.worlds and mc.early_stops counters. It carries no statistical content;
// discarding it never changes a decision.
type MCStats struct {
	// Worlds is the number of alternative worlds simulated (<= the requested
	// m when early stopping triggered).
	Worlds int
	// EarlyStopped reports whether the estimate returned before exhausting m
	// because the significance decision was already forced.
	EarlyStopped bool
}

// AdaptiveMonteCarloP is MonteCarloP with early stopping for clearly
// non-significant observations: once the number of simulated statistics
// meeting or exceeding the observed one guarantees p > alpha — i.e. geq+1 >
// alpha*(m+1) — no further simulation can change the significance decision,
// and the function returns a conservative lower bound on p.
//
// The returned significant flag is identical to MonteCarloP's p <= alpha
// decision with the same generator, and p is exact whenever significant is
// true. Early stopping only truncates the stream of a pair that was going to
// be non-significant anyway, so audits remain deterministic.
func AdaptiveMonteCarloP(observed float64, m int, alpha float64, simulate func() float64) (p float64, significant bool) {
	p, significant, _ = AdaptiveMonteCarloPStats(observed, m, alpha, simulate)
	return p, significant
}

// AdaptiveMonteCarloPStats is AdaptiveMonteCarloP reporting, in addition,
// how many worlds were simulated and whether the estimate stopped early.
func AdaptiveMonteCarloPStats(observed float64, m int, alpha float64, simulate func() float64) (p float64, significant bool, st MCStats) {
	if m <= 0 {
		return 1, false, MCStats{}
	}
	cut := alpha * float64(m+1)
	geq := 0
	for i := 0; i < m; i++ {
		if simulate() >= observed {
			geq++
			if float64(1+geq) > cut {
				return float64(1+geq) / float64(m+1), false, MCStats{Worlds: i + 1, EarlyStopped: true}
			}
		}
	}
	p = float64(1+geq) / float64(m+1)
	return p, p <= alpha, MCStats{Worlds: m}
}

// pairNullDraw simulates one world of the paper's pairwise null hypothesis:
// both regions' positive counts drawn from Binomial(n, pooledRate), scored by
// the pairwise likelihood-ratio statistic. It is the body of
// PairNullSimulator's closure, shared so the allocation-free entry points
// below produce the identical stream.
func pairNullDraw(rng *RNG, n1, n2 int, pooledRate float64) float64 {
	k1 := rng.Binomial(n1, pooledRate)
	k2 := rng.Binomial(n2, pooledRate)
	return PairLRT(k1, n1, k2, n2)
}

// PairMonteCarloP is MonteCarloP specialized to the pairwise null of
// PairNullSimulator, taking the generator and null parameters directly so a
// hot loop can reuse one per-worker RNG (reseeded per pair with RNG.Seed)
// without allocating a simulator closure. The stream and the returned
// p-value are identical to
//
//	MonteCarloP(observed, m, PairNullSimulator(rng, n1, n2, pooledRate))
//
// with an equivalently seeded generator.
//
//lint:hotpath
func PairMonteCarloP(rng *RNG, observed float64, m, n1, n2 int, pooledRate float64) float64 {
	if m <= 0 {
		return 1
	}
	geq := 0
	for i := 0; i < m; i++ {
		if pairNullDraw(rng, n1, n2, pooledRate) >= observed {
			geq++
		}
	}
	return float64(1+geq) / float64(m+1)
}

// AdaptivePairMonteCarloPStats is AdaptiveMonteCarloPStats specialized to the
// pairwise null, allocation-free like PairMonteCarloP. The stream, p-value,
// significance decision, and effort stats are identical to
//
//	AdaptiveMonteCarloPStats(observed, m, alpha, PairNullSimulator(rng, n1, n2, pooledRate))
//
// with an equivalently seeded generator.
//
//lint:hotpath
func AdaptivePairMonteCarloPStats(rng *RNG, observed float64, m int, alpha float64, n1, n2 int, pooledRate float64) (p float64, significant bool, st MCStats) {
	if m <= 0 {
		return 1, false, MCStats{}
	}
	cut := alpha * float64(m+1)
	geq := 0
	for i := 0; i < m; i++ {
		if pairNullDraw(rng, n1, n2, pooledRate) >= observed {
			geq++
			if float64(1+geq) > cut {
				return float64(1+geq) / float64(m+1), false, MCStats{Worlds: i + 1, EarlyStopped: true}
			}
		}
	}
	p = float64(1+geq) / float64(m+1)
	return p, p <= alpha, MCStats{Worlds: m}
}

// PairNullSimulator returns a closure that simulates the paper's pairwise
// null hypothesis for two regions with n1 and n2 individuals: both regions'
// positive counts are drawn from Binomial(n, pooledRate), and the pairwise
// likelihood-ratio statistic is returned. It is the `simulate` argument used
// with MonteCarloP for the LC-SF test.
func PairNullSimulator(rng *RNG, n1, n2 int, pooledRate float64) func() float64 {
	return func() float64 {
		return pairNullDraw(rng, n1, n2, pooledRate)
	}
}

// RegionNullSimulator returns a closure simulating the Sacharidis et al.
// null: the region's and the outside's positive counts are both drawn at the
// global rate, and the region-vs-outside likelihood-ratio statistic is
// returned.
func RegionNullSimulator(rng *RNG, n, N int, globalRate float64) func() float64 {
	return func() float64 {
		k := rng.Binomial(n, globalRate)
		rest := rng.Binomial(N-n, globalRate)
		return RegionVsOutsideLRT(k, n, k+rest, N)
	}
}
