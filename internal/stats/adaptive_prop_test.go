package stats

import (
	"fmt"
	"testing"

	"lcsf/internal/testutil"
)

// TestAdaptivePropertyAgreement is a randomized property test over a wide
// sweep of region sizes, pooled rates, world counts, and alpha levels: on
// identically-seeded simulation streams, AdaptiveMonteCarloP's significant
// flag must always equal MonteCarloP's p <= alpha decision, the p-value must
// be exact whenever significant (and a valid conservative bound otherwise),
// and the reported world count must match the early-stop claim.
func TestAdaptivePropertyAgreement(t *testing.T) {
	meta := NewRNG(0xFA17)
	alphas := []float64{0.01, 0.05, 0.10}
	worlds := []int{49, 199, 499}
	const trials = 400
	earlyStops, fullRuns := 0, 0
	for trial := 0; trial < trials; trial++ {
		n1 := 50 + meta.Intn(500)
		n2 := 50 + meta.Intn(500)
		rate := 0.2 + 0.6*meta.Float64()
		// Mix null draws with shifted alternatives of varying strength so
		// observed statistics span hopeless to overwhelming.
		shift := 0.0
		switch trial % 3 {
		case 1:
			shift = 0.05 + 0.05*meta.Float64()
		case 2:
			shift = 0.15 + 0.15*meta.Float64()
		}
		gen := NewRNG(uint64(9000 + trial))
		k1 := gen.Binomial(n1, rate)
		k2 := gen.Binomial(n2, clamp01(rate-shift))
		obs := PairLRT(k1, n1, k2, n2)

		m := worlds[trial%len(worlds)]
		alpha := alphas[(trial/3)%len(alphas)]
		streamSeed := uint64(31337 + trial)

		exact := MonteCarloP(obs, m, PairNullSimulator(NewRNG(streamSeed), n1, n2, rate))
		adaptP, adaptSig, st := AdaptiveMonteCarloPStats(obs, m, alpha,
			PairNullSimulator(NewRNG(streamSeed), n1, n2, rate))

		if adaptSig != (exact <= alpha) {
			t.Fatalf("trial %d (n=%d/%d m=%d alpha=%v): adaptive sig=%v but exact p=%v",
				trial, n1, n2, m, alpha, adaptSig, exact)
		}
		if adaptSig {
			// Identical streams: the significant p-value must match exactly.
			testutil.InDelta(t, fmt.Sprintf("trial %d significant p", trial), adaptP, exact, 0)
		}
		if !adaptSig && (adaptP <= alpha || adaptP > 1) {
			t.Fatalf("trial %d: non-significant bound p=%v outside (alpha,1]", trial, adaptP)
		}
		if st.EarlyStopped {
			earlyStops++
			if st.Worlds >= m {
				t.Fatalf("trial %d: early stop after %d of %d worlds", trial, st.Worlds, m)
			}
		} else {
			fullRuns++
			if st.Worlds != m {
				t.Fatalf("trial %d: full run simulated %d of %d worlds", trial, st.Worlds, m)
			}
		}
		// The wrapper must agree with the Stats variant on a fresh stream.
		p2, sig2 := AdaptiveMonteCarloP(obs, m, alpha,
			PairNullSimulator(NewRNG(streamSeed), n1, n2, rate))
		if sig2 != adaptSig {
			t.Fatalf("trial %d: AdaptiveMonteCarloP sig=%v, Stats variant sig=%v",
				trial, sig2, adaptSig)
		}
		testutil.InDelta(t, fmt.Sprintf("trial %d wrapper p", trial), p2, adaptP, 0)
	}
	// The sweep must actually exercise both paths to prove anything.
	if earlyStops == 0 || fullRuns == 0 {
		t.Fatalf("degenerate sweep: %d early stops, %d full runs", earlyStops, fullRuns)
	}
}

func clamp01(v float64) float64 {
	if v < 0.01 {
		return 0.01
	}
	if v > 0.99 {
		return 0.99
	}
	return v
}
