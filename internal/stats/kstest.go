package stats

import (
	"math"
	"sort"
)

// KSResult holds the outcome of a two-sample Kolmogorov–Smirnov test.
type KSResult struct {
	D float64 // the KS statistic: sup |F1 - F2|
	P float64 // asymptotic two-sided p-value
}

// KolmogorovSmirnov performs the two-sample KS test: H0 says the samples
// come from the same continuous distribution. It is offered as an
// alternative similarity metric to the Mann–Whitney U test — sensitive to
// any distributional difference (spread, shape), not only location shifts.
// Empty samples give P = NaN.
//
// KolmogorovSmirnov sorts copies of both samples and delegates to
// KolmogorovSmirnovSorted; callers that compare one sample against many
// others should sort once and use the sorted variant directly.
func KolmogorovSmirnov(xs, ys []float64) KSResult {
	if len(xs) == 0 || len(ys) == 0 {
		return KSResult{D: math.NaN(), P: math.NaN()}
	}
	a := append([]float64(nil), xs...)
	b := append([]float64(nil), ys...)
	sort.Float64s(a)
	sort.Float64s(b)
	return KolmogorovSmirnovSorted(a, b)
}

// KolmogorovSmirnovSorted is KolmogorovSmirnov for samples already sorted
// ascending: a single merge pass over the two empirical CDFs — O(n1+n2)
// time, zero allocations — with results bit-identical to KolmogorovSmirnov
// on the same data. Inputs that are not sorted ascending yield unspecified
// results.
func KolmogorovSmirnovSorted(xs, ys []float64) KSResult {
	n1, n2 := len(xs), len(ys)
	if n1 == 0 || n2 == 0 {
		return KSResult{D: math.NaN(), P: math.NaN()}
	}

	var d float64
	i, j := 0, 0
	for i < n1 && j < n2 {
		v := math.Min(xs[i], ys[j])
		for i < n1 && xs[i] <= v {
			i++
		}
		for j < n2 && ys[j] <= v {
			j++
		}
		f1 := float64(i) / float64(n1)
		f2 := float64(j) / float64(n2)
		if diff := math.Abs(f1 - f2); diff > d {
			d = diff
		}
	}

	ne := float64(n1) * float64(n2) / float64(n1+n2)
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	return KSResult{D: d, P: ksProbability(lambda)}
}

// KolmogorovSmirnovSortedNoTies is the no-ties specialization of
// KolmogorovSmirnovSorted for samples that are each strictly increasing: the
// tie-grouping inner loops collapse to a single-cursor advance per step. The
// caller must guarantee neither sample contains a duplicate value;
// cross-sample ties are detected and return ok=false with an unspecified
// result, in which case the caller falls back to the general kernel. When ok
// is true the result is bit-identical to KolmogorovSmirnovSorted: with both
// samples strictly increasing and no cross ties, the general kernel's merge
// visits exactly this sequence of (i, j) checkpoints and evaluates the same
// division and comparison expressions.
//
// Empty samples return the NaN result with ok=true, matching
// KolmogorovSmirnovSorted.
//
//lint:hotpath
func KolmogorovSmirnovSortedNoTies(xs, ys []float64) (res KSResult, ok bool) {
	n1, n2 := len(xs), len(ys)
	if n1 == 0 || n2 == 0 {
		return KSResult{D: math.NaN(), P: math.NaN()}, true
	}
	var d float64
	fn1, fn2 := float64(n1), float64(n2)
	i, j := 0, 0
	for i < n1 && j < n2 {
		x, y := xs[i], ys[j]
		if x == y { //lint:floateq-ok cross-tie-detection
			return KSResult{}, false
		}
		if x < y {
			i++
		} else {
			j++
		}
		f1 := float64(i) / fn1
		f2 := float64(j) / fn2
		if diff := math.Abs(f1 - f2); diff > d {
			d = diff
		}
	}
	ne := fn1 * fn2 / float64(n1+n2)
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	return KSResult{D: d, P: ksProbability(lambda)}, true
}

// KolmogorovSmirnovSeparatedP returns the KS p-value at the maximal statistic
// D = 1, which two samples attain exactly when their value ranges are
// disjoint. Because the asymptotic tail is decreasing in D, this is a lower
// bound on the p-value of any two samples — and the exact p-value for
// range-disjoint ones, which is how the audit engine's conservative KS bound
// uses it: a range-disjoint pair rejects exactly when this p is already below
// the similarity threshold. Empty samples give NaN, matching
// KolmogorovSmirnov.
func KolmogorovSmirnovSeparatedP(n1, n2 int) float64 {
	if n1 == 0 || n2 == 0 {
		return math.NaN()
	}
	ne := float64(n1) * float64(n2) / float64(n1+n2)
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * 1
	return ksProbability(lambda)
}

// ksProbability is the asymptotic Kolmogorov distribution tail
// Q(lambda) = 2 sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2).
func ksProbability(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	const maxTerms = 100
	sum := 0.0
	sign := 1.0
	for k := 1; k <= maxTerms; k++ {
		term := sign * math.Exp(-2*float64(k)*float64(k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p
}
