package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestChiSquareCDFKnownValues(t *testing.T) {
	cases := []struct {
		x    float64
		k    int
		want float64
	}{
		// Reference values (R: pchisq).
		{3.841458820694124, 1, 0.95},
		{6.634896601021213, 1, 0.99},
		{5.991464547107979, 2, 0.95},
		{0, 1, 0},
		{1, 1, 0.6826894921370859}, // P(|Z|<1)
		{11.070497693516351, 5, 0.95},
		{18.307038053275146, 10, 0.95},
	}
	for _, c := range cases {
		if got := ChiSquareCDF(c.x, c.k); !almostEq(got, c.want, 1e-9) {
			t.Errorf("ChiSquareCDF(%v, %d) = %v, want %v", c.x, c.k, got, c.want)
		}
	}
}

func TestChiSquareSFComplement(t *testing.T) {
	for _, k := range []int{1, 2, 5, 20} {
		for _, x := range []float64{0.1, 1, 5, 20, 50} {
			if got := ChiSquareCDF(x, k) + ChiSquareSF(x, k); !almostEq(got, 1, 1e-12) {
				t.Errorf("CDF+SF at (%v,%d) = %v", x, k, got)
			}
		}
	}
	if ChiSquareSF(0, 3) != 1 || ChiSquareCDF(-1, 3) != 0 {
		t.Error("boundary values wrong")
	}
	if !math.IsNaN(ChiSquareCDF(1, 0)) || !math.IsNaN(ChiSquareSF(1, -2)) {
		t.Error("k <= 0 should be NaN")
	}
}

// Property: chi-square(1) matches the square of a standard normal:
// P(X <= x) = P(|Z| <= sqrt(x)) = 2*Phi(sqrt(x)) - 1.
func TestChiSquare1MatchesNormal(t *testing.T) {
	f := func(raw float64) bool {
		x := math.Abs(math.Mod(raw, 40))
		want := 2*NormalCDF(math.Sqrt(x)) - 1
		return almostEq(ChiSquareCDF(x, 1), want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the CDF is monotone in x and decreasing in k (for fixed x).
func TestChiSquareMonotonicity(t *testing.T) {
	prev := 0.0
	for x := 0.5; x < 30; x += 0.5 {
		cur := ChiSquareCDF(x, 4)
		if cur < prev-1e-12 {
			t.Fatalf("CDF not monotone at %v", x)
		}
		prev = cur
	}
	for k := 1; k < 15; k++ {
		if ChiSquareCDF(8, k) < ChiSquareCDF(8, k+1)-1e-12 {
			t.Fatalf("CDF should decrease with k at fixed x (k=%d)", k)
		}
	}
}

// The Monte-Carlo pair test should agree with the chi-square asymptotics at
// large counts: the prescreen in the core package depends on this.
func TestPairLRTAsymptoticallyChiSquare(t *testing.T) {
	rng := NewRNG(77)
	n := 5000
	rate := 0.6
	var below95 int
	trials := 400
	for i := 0; i < trials; i++ {
		k1, k2 := rng.Binomial(n, rate), rng.Binomial(n, rate)
		tau := PairLRT(k1, n, k2, n)
		if ChiSquareSF(tau, 1) > 0.05 {
			below95++
		}
	}
	frac := float64(below95) / float64(trials)
	if frac < 0.90 || frac > 0.99 {
		t.Errorf("null taus within chi-square 95%% band: %v, want ~0.95", frac)
	}
}
