package stats

// Reservoir maintains a uniform random sample of bounded size over a stream
// of float64 observations (Algorithm R). The framework keeps one reservoir of
// income observations per region so the Mann–Whitney similarity test stays
// cheap no matter how many individuals a region contains.
type Reservoir struct {
	sample []float64
	seen   int
	cap    int
	rng    *RNG
}

// NewReservoir returns a reservoir holding at most capacity observations,
// using the given generator for replacement decisions. It panics when
// capacity is not positive.
func NewReservoir(capacity int, rng *RNG) *Reservoir {
	if capacity <= 0 {
		panic("stats: reservoir capacity must be positive")
	}
	return &Reservoir{sample: make([]float64, 0, capacity), cap: capacity, rng: rng}
}

// Add offers one observation to the reservoir.
func (r *Reservoir) Add(x float64) {
	r.seen++
	if len(r.sample) < r.cap {
		r.sample = append(r.sample, x)
		return
	}
	if j := r.rng.Intn(r.seen); j < r.cap {
		r.sample[j] = x
	}
}

// Sample returns the current sample. The returned slice is owned by the
// reservoir; callers must not modify it.
func (r *Reservoir) Sample() []float64 { return r.sample }

// Seen returns the number of observations offered so far.
func (r *Reservoir) Seen() int { return r.seen }

// Len returns the current sample size, min(Seen, capacity).
func (r *Reservoir) Len() int { return len(r.sample) }
