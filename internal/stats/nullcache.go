package stats

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// PairNullCache memoizes sorted Monte-Carlo null samples of the pairwise
// likelihood-ratio statistic. The null distribution of PairLRT depends only on
// the integer triple (n1, n2, pooledPositives) — both regions' counts are
// drawn from Binomial(n, pooledPositives/(n1+n2)) — so audits over universes
// with repeated count signatures can share one simulation per signature and
// answer each pair's p-value by binary search instead of re-simulating m
// worlds.
//
// Determinism: each entry's simulation stream is seeded purely from the cache
// seed and the normalized key, so the sample — and every p-value derived from
// it — is a function of (seed, worlds, key) alone, independent of which
// goroutine populates the entry, of arrival order, and of eviction history.
// The cache is safe for concurrent use.
//
// Capacity is bounded: entries beyond the configured size evict the least
// recently used entry of their shard (approximate LRU — recency ticks are
// process-wide, eviction is per-shard). A re-simulated entry reproduces the
// evicted one exactly, so eviction affects cost, never values.
type PairNullCache struct {
	seed     uint64
	worlds   int
	perShard int

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	tick      atomic.Uint64

	shards [nullCacheShards]nullCacheShard
}

// nullCacheShards spreads lock contention; must be a power of two.
const nullCacheShards = 16

type nullCacheShard struct {
	mu      sync.RWMutex
	entries map[pairNullKey]*nullCacheEntry //lint:guardedby mu
	// keys mirrors the map's key set in insertion order so eviction scans a
	// slice rather than ranging over the map (map iteration order is
	// nondeterministic; the victim choice must not be).
	keys []pairNullKey //lint:guardedby mu
}

// pairNullKey is the normalized cache key: n1 <= n2 (the null is symmetric in
// the two regions' sizes given the pooled count).
type pairNullKey struct {
	n1, n2          int
	pooledPositives int
}

type nullCacheEntry struct {
	once     sync.Once
	sorted   []float64 // ascending null statistics, length = worlds
	lastUsed atomic.Uint64
}

// NewPairNullCache returns a cache producing worlds-long null samples seeded
// from seed. maxEntries bounds the number of retained keys (values below the
// shard count are raised to it so every shard can hold at least one entry).
func NewPairNullCache(seed uint64, worlds, maxEntries int) *PairNullCache {
	if maxEntries < nullCacheShards {
		maxEntries = nullCacheShards
	}
	c := &PairNullCache{
		seed:     seed,
		worlds:   worlds,
		perShard: (maxEntries + nullCacheShards - 1) / nullCacheShards,
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[pairNullKey]*nullCacheEntry) //lint:locksafe-ok constructor: no concurrent access before the cache is returned
	}
	return c
}

// Worlds returns the per-entry sample length m.
func (c *PairNullCache) Worlds() int { return c.worlds }

// Stats reports cumulative cache traffic: lookups answered by an existing
// entry, lookups that simulated a fresh one, and entries evicted.
func (c *PairNullCache) Stats() (hits, misses, evictions int64) {
	return c.hits.Load(), c.misses.Load(), c.evictions.Load()
}

// PValue returns the add-one Monte-Carlo p-value of an observed statistic
// against the cached null sample for (n1, n2, pooledPositives), simulating
// the sample on first use:
//
//	p = (1 + #{tau_null >= observed}) / (m + 1)
//
// — the same estimator as MonteCarloP, with the count answered by binary
// search over the sorted sample. hit reports whether the entry already
// existed (false exactly once per key per residency in the cache). The
// returned p is deterministic in (seed, worlds, key, observed) either way.
//
//lint:hotpath
func (c *PairNullCache) PValue(n1, n2, pooledPositives int, observed float64) (p float64, hit bool) {
	if c.worlds <= 0 {
		return 1, false
	}
	if n1 > n2 {
		n1, n2 = n2, n1
	}
	key := pairNullKey{n1: n1, n2: n2, pooledPositives: pooledPositives}
	e, hit := c.lookupOrInsert(key)
	e.once.Do(func() { e.sorted = c.simulate(key) }) //lint:hotpathalloc-ok one simulation per key residency, amortized over all hits
	e.lastUsed.Store(c.tick.Add(1))
	if hit {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	idx := sort.SearchFloat64s(e.sorted, observed) // first index with value >= observed
	geq := len(e.sorted) - idx
	return float64(1+geq) / float64(len(e.sorted)+1), hit
}

// lookupOrInsert finds the entry for key, inserting an empty one (and
// possibly evicting its shard's least-recently-used entry) when absent.
// Exactly one caller per key residency observes hit == false.
func (c *PairNullCache) lookupOrInsert(key pairNullKey) (e *nullCacheEntry, hit bool) { //lint:hotpathalloc-ok insert/evict is once per key residency, amortized
	sh := &c.shards[nullKeyHash(key)&(nullCacheShards-1)]
	sh.mu.RLock()
	e = sh.entries[key]
	sh.mu.RUnlock()
	if e != nil {
		return e, true
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e = sh.entries[key]; e != nil {
		return e, true // another goroutine inserted between the locks
	}
	if len(sh.keys) >= c.perShard {
		victim := 0
		oldest := sh.entries[sh.keys[0]].lastUsed.Load()
		for i := 1; i < len(sh.keys); i++ {
			if used := sh.entries[sh.keys[i]].lastUsed.Load(); used < oldest {
				victim, oldest = i, used
			}
		}
		delete(sh.entries, sh.keys[victim])
		sh.keys[victim] = sh.keys[len(sh.keys)-1]
		sh.keys = sh.keys[:len(sh.keys)-1]
		c.evictions.Add(1)
	}
	e = &nullCacheEntry{}
	sh.entries[key] = e
	sh.keys = append(sh.keys, key)
	return e, false
}

// simulate draws the key's null sample with a generator seeded from
// (cache seed, key) alone and sorts it ascending for binary search.
func (c *PairNullCache) simulate(key pairNullKey) []float64 {
	out := make([]float64, c.worlds)
	FillPairNull(out, c.seed, key.n1, key.n2, key.pooledPositives)
	return out
}

// FillPairNull fills dst with the sorted null sample of the pairwise LRT
// statistic for the key (n1, n2, pooledPositives) under cache seed — one
// world per element of dst, drawn in a single batched pass and sorted
// ascending. It is the allocation-free core of PairNullCache.simulate: a
// cache constructed with this seed and worlds == len(dst) holds exactly this
// sample for the key, so pre-warm passes can fill reusable buffers and p-value
// consumers stay bit-identical whether the entry was simulated inline,
// pre-warmed, or re-simulated after eviction. The key is normalized
// (n1 <= n2) exactly as the cache normalizes it.
func FillPairNull(dst []float64, seed uint64, n1, n2, pooledPositives int) {
	if len(dst) == 0 {
		return
	}
	if n1 > n2 {
		n1, n2 = n2, n1
	}
	key := pairNullKey{n1: n1, n2: n2, pooledPositives: pooledPositives}
	var rng RNG
	rng.Seed(nullCacheSeed(seed, key))
	pooledRate := float64(key.pooledPositives) / float64(key.n1+key.n2)
	if key.n1 > 0 && key.n1+key.n2 <= nullTableMaxN {
		fillPairNullTabled(dst, &rng, key.n1, key.n2, pooledRate)
	} else {
		for i := range dst {
			dst[i] = pairNullDraw(&rng, key.n1, key.n2, pooledRate)
		}
	}
	sort.Float64s(dst)
}

// nullTableMaxN bounds the region sizes for which fillPairNullTabled's
// stack tables apply; larger keys fall back to the direct per-world PairLRT.
const nullTableMaxN = 2048

// fillPairNullTabled is FillPairNull's hot inner loop for keys with
// n1+n2 <= nullTableMaxN. Within one fill the region sizes are fixed, so
// every logarithm PairLRT evaluates is a function of the drawn counts alone:
// the alternative-hypothesis terms depend only on k1 (respectively k2), and
// the null terms only on the pooled sum s = k1+k2. The tables memoize those
// values lazily — each entry is computed by the exact expression PairLRT
// uses, and the statistic is assembled with the same operations in the same
// order, so every world is bit-identical to pairNullDraw's; only repeated
// math.Log evaluations are saved (the draws concentrate around the binomial
// mean, so a fill of m worlds touches far fewer than m distinct entries).
// The tables live on the stack, keeping the fill allocation-free.
func fillPairNullTabled(dst []float64, rng *RNG, n1, n2 int, pooledRate float64) {
	var la1, la2 [nullTableMaxN + 1]float64 // MaxBernoulliLogLik(k, n1|n2)
	var lp, lq [nullTableMaxN + 1]float64   // Log(pooled), Log(1-pooled) by s
	var la1ok, la2ok, lsok [nullTableMaxN + 1]bool
	n := n1 + n2
	for i := range dst {
		k1 := rng.Binomial(n1, pooledRate)
		k2 := rng.Binomial(n2, pooledRate)
		s := k1 + k2
		if !lsok[s] {
			rho := float64(s) / float64(n)
			lp[s], lq[s] = math.Log(rho), math.Log(1-rho)
			lsok[s] = true
		}
		if !la1ok[k1] {
			la1[k1], la1ok[k1] = MaxBernoulliLogLik(k1, n1), true
		}
		if !la2ok[k2] {
			la2[k2], la2ok[k2] = MaxBernoulliLogLik(k2, n2), true
		}
		// BernoulliLogLik(k, n, rho) with rho in (0,1) guaranteed whenever a
		// guarded term is taken: k > 0 implies s > 0 and n-k > 0 implies
		// s < n, so the -Inf branches are unreachable and each term reduces
		// to the same guarded multiply-adds, from the same zero value.
		var b1, b2 float64
		if k1 > 0 {
			b1 = float64(k1) * lp[s]
		}
		if n1-k1 > 0 {
			b1 += float64(n1-k1) * lq[s]
		}
		if k2 > 0 {
			b2 = float64(k2) * lp[s]
		}
		if n2-k2 > 0 {
			b2 += float64(n2-k2) * lq[s]
		}
		dst[i] = LogLikRatio(b1+b2, la1[k1]+la2[k2])
	}
}

// Prewarm materializes the entry for (n1, n2, pooledPositives) without
// recording a hit or a miss, returning true when this call simulated a fresh
// entry and false when the entry already existed. The pre-warm pass runs
// before the pair sweep, so sweep-side hit/miss counters keep describing
// sweep traffic; entries created here are byte-identical to entries the sweep
// would have created (simulation streams depend only on seed and key).
func (c *PairNullCache) Prewarm(n1, n2, pooledPositives int) (filled bool) {
	if c.worlds <= 0 {
		return false
	}
	if n1 > n2 {
		n1, n2 = n2, n1
	}
	key := pairNullKey{n1: n1, n2: n2, pooledPositives: pooledPositives}
	e, hit := c.lookupOrInsert(key)
	e.once.Do(func() { e.sorted = c.simulate(key) })
	e.lastUsed.Store(c.tick.Add(1))
	return !hit
}

// Capacity returns the maximum number of entries the cache retains before
// evicting (the configured bound rounded up to a multiple of the shard
// count). Pre-warm passes stop filling at this bound: past it, fills would
// only evict each other.
func (c *PairNullCache) Capacity() int {
	return c.perShard * nullCacheShards
}

// FrozenNullCache is a read-only flat snapshot of a PairNullCache: every
// resident entry's key and sorted null sample, laid out for binary search.
// Lookups take no locks and touch no shared mutable state — no recency tick,
// no hit/miss atomics — so a full worker fan-out reads it contention-free.
// The audit engine freezes the cache after the pre-warm barrier (when every
// signature the sweep can request is already resident) and serves sweep
// lookups from the snapshot; keys absent from it (capacity cutoff, or keys
// born after the freeze under delta updates) fall back to the live cache,
// which answers bit-identically because entries are key-seeded.
type FrozenNullCache struct {
	keys    []pairNullKey // ascending by (n1, n2, pooledPositives)
	samples [][]float64   // samples[i] is keys[i]'s ascending null sample
}

// Freeze snapshots the cache's current entries into a FrozenNullCache. The
// caller must ensure no fill is in flight (the audit engine freezes after the
// pre-warm phase's barrier); concurrent lookups on the live cache remain
// safe during and after the freeze, and the live cache is unaffected — the
// snapshot shares the immutable sorted samples, so later evictions cost
// memory (the snapshot keeps its reference) but never correctness. A nil or
// disabled cache freezes to nil, which every FrozenNullCache method treats
// as an always-miss.
func (c *PairNullCache) Freeze() *FrozenNullCache {
	if c == nil || c.worlds <= 0 {
		return nil
	}
	f := &FrozenNullCache{}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		for _, key := range sh.keys {
			e := sh.entries[key]
			// Entries are filled by their inserter immediately after insertion;
			// the Do is a barrier-free safety net that also publishes e.sorted
			// to this goroutine.
			e.once.Do(func() { e.sorted = c.simulate(key) })
			f.keys = append(f.keys, key)
			f.samples = append(f.samples, e.sorted)
		}
		sh.mu.RUnlock()
	}
	sort.Sort(frozenByKey{f})
	return f
}

// frozenByKey sorts the snapshot's parallel slices by normalized key so
// lookups can binary-search.
type frozenByKey struct{ f *FrozenNullCache }

func (s frozenByKey) Len() int { return len(s.f.keys) }
func (s frozenByKey) Less(i, j int) bool {
	a, b := s.f.keys[i], s.f.keys[j]
	if a.n1 != b.n1 {
		return a.n1 < b.n1
	}
	if a.n2 != b.n2 {
		return a.n2 < b.n2
	}
	return a.pooledPositives < b.pooledPositives
}
func (s frozenByKey) Swap(i, j int) {
	s.f.keys[i], s.f.keys[j] = s.f.keys[j], s.f.keys[i]
	s.f.samples[i], s.f.samples[j] = s.f.samples[j], s.f.samples[i]
}

// Len returns the number of frozen entries.
func (f *FrozenNullCache) Len() int {
	if f == nil {
		return 0
	}
	return len(f.keys)
}

// PValue answers the same add-one Monte-Carlo estimate PairNullCache.PValue
// computes for a resident key — the identical sorted sample through the
// identical arithmetic, so the two paths cannot drift — and ok=false when the
// key is not in the snapshot (the caller falls back to the live cache). It
// performs no writes of any kind: safe for any number of concurrent readers,
// zero allocations, zero atomics.
//
//lint:hotpath
func (f *FrozenNullCache) PValue(n1, n2, pooledPositives int, observed float64) (p float64, ok bool) {
	if f == nil {
		return 0, false
	}
	if n1 > n2 {
		n1, n2 = n2, n1
	}
	key := pairNullKey{n1: n1, n2: n2, pooledPositives: pooledPositives}
	lo, hi := 0, len(f.keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		k := f.keys[mid]
		if k.n1 < key.n1 || (k.n1 == key.n1 && (k.n2 < key.n2 || (k.n2 == key.n2 && k.pooledPositives < key.pooledPositives))) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(f.keys) || f.keys[lo] != key {
		return 0, false
	}
	sorted := f.samples[lo]
	idx := sort.SearchFloat64s(sorted, observed) // first index with value >= observed
	geq := len(sorted) - idx
	return float64(1+geq) / float64(len(sorted)+1), true
}

// NullCacheReferenceP computes, with no cache at all, the p-value a
// PairNullCache constructed with the same seed and worlds returns for the
// key (n1, n2, pooledPositives) at the observed statistic. It re-derives the
// key-seeded stream and counts exceedances directly, so it is the oracle the
// verification harness fuzzes PairNullCache against: cached, evicted, and
// re-simulated lookups must all be bit-identical to this uncached reference.
func NullCacheReferenceP(seed uint64, worlds, n1, n2, pooledPositives int, observed float64) float64 {
	if worlds <= 0 {
		return 1
	}
	if n1 > n2 {
		n1, n2 = n2, n1
	}
	key := pairNullKey{n1: n1, n2: n2, pooledPositives: pooledPositives}
	rng := NewRNG(nullCacheSeed(seed, key))
	pooledRate := float64(key.pooledPositives) / float64(key.n1+key.n2)
	return PairMonteCarloP(rng, observed, worlds, key.n1, key.n2, pooledRate)
}

// nullCacheSeed derives an entry's RNG seed from the cache seed and the
// normalized key — an FNV-style mix over the three key integers, salted
// differently from the audit engine's per-pair seed derivation so the cached
// and per-pair streams never alias.
func nullCacheSeed(seed uint64, key pairNullKey) uint64 {
	h := seed ^ 0x9E2AC4F1D7
	h = h*0x100000001b3 ^ uint64(key.n1)
	h = h*0x100000001b3 ^ uint64(key.n2)
	h = h*0x100000001b3 ^ uint64(key.pooledPositives)
	return h
}

// nullKeyHash spreads keys across shards (distinct from nullCacheSeed so
// shard placement and stream seeding are uncorrelated).
func nullKeyHash(key pairNullKey) uint64 {
	h := uint64(0x517cc1b727220a95)
	h = (h ^ uint64(key.n1)) * 0x2545F4914F6CDD1D
	h = (h ^ uint64(key.n2)) * 0x2545F4914F6CDD1D
	h = (h ^ uint64(key.pooledPositives)) * 0x2545F4914F6CDD1D
	return h ^ h>>32
}
