package stats

import (
	"sort"
	"sync"
	"sync/atomic"
)

// PairNullCache memoizes sorted Monte-Carlo null samples of the pairwise
// likelihood-ratio statistic. The null distribution of PairLRT depends only on
// the integer triple (n1, n2, pooledPositives) — both regions' counts are
// drawn from Binomial(n, pooledPositives/(n1+n2)) — so audits over universes
// with repeated count signatures can share one simulation per signature and
// answer each pair's p-value by binary search instead of re-simulating m
// worlds.
//
// Determinism: each entry's simulation stream is seeded purely from the cache
// seed and the normalized key, so the sample — and every p-value derived from
// it — is a function of (seed, worlds, key) alone, independent of which
// goroutine populates the entry, of arrival order, and of eviction history.
// The cache is safe for concurrent use.
//
// Capacity is bounded: entries beyond the configured size evict the least
// recently used entry of their shard (approximate LRU — recency ticks are
// process-wide, eviction is per-shard). A re-simulated entry reproduces the
// evicted one exactly, so eviction affects cost, never values.
type PairNullCache struct {
	seed     uint64
	worlds   int
	perShard int

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	tick      atomic.Uint64

	shards [nullCacheShards]nullCacheShard
}

// nullCacheShards spreads lock contention; must be a power of two.
const nullCacheShards = 16

type nullCacheShard struct {
	mu      sync.RWMutex
	entries map[pairNullKey]*nullCacheEntry //lint:guardedby mu
	// keys mirrors the map's key set in insertion order so eviction scans a
	// slice rather than ranging over the map (map iteration order is
	// nondeterministic; the victim choice must not be).
	keys []pairNullKey //lint:guardedby mu
}

// pairNullKey is the normalized cache key: n1 <= n2 (the null is symmetric in
// the two regions' sizes given the pooled count).
type pairNullKey struct {
	n1, n2          int
	pooledPositives int
}

type nullCacheEntry struct {
	once     sync.Once
	sorted   []float64 // ascending null statistics, length = worlds
	lastUsed atomic.Uint64
}

// NewPairNullCache returns a cache producing worlds-long null samples seeded
// from seed. maxEntries bounds the number of retained keys (values below the
// shard count are raised to it so every shard can hold at least one entry).
func NewPairNullCache(seed uint64, worlds, maxEntries int) *PairNullCache {
	if maxEntries < nullCacheShards {
		maxEntries = nullCacheShards
	}
	c := &PairNullCache{
		seed:     seed,
		worlds:   worlds,
		perShard: (maxEntries + nullCacheShards - 1) / nullCacheShards,
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[pairNullKey]*nullCacheEntry) //lint:locksafe-ok constructor: no concurrent access before the cache is returned
	}
	return c
}

// Worlds returns the per-entry sample length m.
func (c *PairNullCache) Worlds() int { return c.worlds }

// Stats reports cumulative cache traffic: lookups answered by an existing
// entry, lookups that simulated a fresh one, and entries evicted.
func (c *PairNullCache) Stats() (hits, misses, evictions int64) {
	return c.hits.Load(), c.misses.Load(), c.evictions.Load()
}

// PValue returns the add-one Monte-Carlo p-value of an observed statistic
// against the cached null sample for (n1, n2, pooledPositives), simulating
// the sample on first use:
//
//	p = (1 + #{tau_null >= observed}) / (m + 1)
//
// — the same estimator as MonteCarloP, with the count answered by binary
// search over the sorted sample. hit reports whether the entry already
// existed (false exactly once per key per residency in the cache). The
// returned p is deterministic in (seed, worlds, key, observed) either way.
//
//lint:hotpath
func (c *PairNullCache) PValue(n1, n2, pooledPositives int, observed float64) (p float64, hit bool) {
	if c.worlds <= 0 {
		return 1, false
	}
	if n1 > n2 {
		n1, n2 = n2, n1
	}
	key := pairNullKey{n1: n1, n2: n2, pooledPositives: pooledPositives}
	e, hit := c.lookupOrInsert(key)
	e.once.Do(func() { e.sorted = c.simulate(key) }) //lint:hotpathalloc-ok one simulation per key residency, amortized over all hits
	e.lastUsed.Store(c.tick.Add(1))
	if hit {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	idx := sort.SearchFloat64s(e.sorted, observed) // first index with value >= observed
	geq := len(e.sorted) - idx
	return float64(1+geq) / float64(len(e.sorted)+1), hit
}

// lookupOrInsert finds the entry for key, inserting an empty one (and
// possibly evicting its shard's least-recently-used entry) when absent.
// Exactly one caller per key residency observes hit == false.
func (c *PairNullCache) lookupOrInsert(key pairNullKey) (e *nullCacheEntry, hit bool) { //lint:hotpathalloc-ok insert/evict is once per key residency, amortized
	sh := &c.shards[nullKeyHash(key)&(nullCacheShards-1)]
	sh.mu.RLock()
	e = sh.entries[key]
	sh.mu.RUnlock()
	if e != nil {
		return e, true
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e = sh.entries[key]; e != nil {
		return e, true // another goroutine inserted between the locks
	}
	if len(sh.keys) >= c.perShard {
		victim := 0
		oldest := sh.entries[sh.keys[0]].lastUsed.Load()
		for i := 1; i < len(sh.keys); i++ {
			if used := sh.entries[sh.keys[i]].lastUsed.Load(); used < oldest {
				victim, oldest = i, used
			}
		}
		delete(sh.entries, sh.keys[victim])
		sh.keys[victim] = sh.keys[len(sh.keys)-1]
		sh.keys = sh.keys[:len(sh.keys)-1]
		c.evictions.Add(1)
	}
	e = &nullCacheEntry{}
	sh.entries[key] = e
	sh.keys = append(sh.keys, key)
	return e, false
}

// simulate draws the key's null sample with a generator seeded from
// (cache seed, key) alone and sorts it ascending for binary search.
func (c *PairNullCache) simulate(key pairNullKey) []float64 {
	rng := NewRNG(nullCacheSeed(c.seed, key))
	pooledRate := float64(key.pooledPositives) / float64(key.n1+key.n2)
	out := make([]float64, c.worlds)
	for i := range out {
		out[i] = pairNullDraw(rng, key.n1, key.n2, pooledRate)
	}
	sort.Float64s(out)
	return out
}

// NullCacheReferenceP computes, with no cache at all, the p-value a
// PairNullCache constructed with the same seed and worlds returns for the
// key (n1, n2, pooledPositives) at the observed statistic. It re-derives the
// key-seeded stream and counts exceedances directly, so it is the oracle the
// verification harness fuzzes PairNullCache against: cached, evicted, and
// re-simulated lookups must all be bit-identical to this uncached reference.
func NullCacheReferenceP(seed uint64, worlds, n1, n2, pooledPositives int, observed float64) float64 {
	if worlds <= 0 {
		return 1
	}
	if n1 > n2 {
		n1, n2 = n2, n1
	}
	key := pairNullKey{n1: n1, n2: n2, pooledPositives: pooledPositives}
	rng := NewRNG(nullCacheSeed(seed, key))
	pooledRate := float64(key.pooledPositives) / float64(key.n1+key.n2)
	return PairMonteCarloP(rng, observed, worlds, key.n1, key.n2, pooledRate)
}

// nullCacheSeed derives an entry's RNG seed from the cache seed and the
// normalized key — an FNV-style mix over the three key integers, salted
// differently from the audit engine's per-pair seed derivation so the cached
// and per-pair streams never alias.
func nullCacheSeed(seed uint64, key pairNullKey) uint64 {
	h := seed ^ 0x9E2AC4F1D7
	h = h*0x100000001b3 ^ uint64(key.n1)
	h = h*0x100000001b3 ^ uint64(key.n2)
	h = h*0x100000001b3 ^ uint64(key.pooledPositives)
	return h
}

// nullKeyHash spreads keys across shards (distinct from nullCacheSeed so
// shard placement and stream seeding are uncorrelated).
func nullKeyHash(key pairNullKey) uint64 {
	h := uint64(0x517cc1b727220a95)
	h = (h ^ uint64(key.n1)) * 0x2545F4914F6CDD1D
	h = (h ^ uint64(key.n2)) * 0x2545F4914F6CDD1D
	h = (h ^ uint64(key.pooledPositives)) * 0x2545F4914F6CDD1D
	return h ^ h>>32
}
