package stats

import (
	"sort"
	"testing"
)

// TestFillPairNullMatchesCacheEntry asserts a batched fill reproduces, byte
// for byte, the p-values a cache produces for the same (seed, worlds, key) —
// and that both agree with the uncached reference oracle.
func TestFillPairNullMatchesCacheEntry(t *testing.T) {
	const seed, worlds = 0xF111ED, 257
	cache := NewPairNullCache(seed, worlds, 64)
	buf := make([]float64, worlds)
	cases := []struct{ n1, n2, pos int }{
		{120, 340, 55}, {340, 120, 55}, {1, 1, 0}, {200, 200, 400}, {77, 1000, 300},
	}
	for _, c := range cases {
		FillPairNull(buf, seed, c.n1, c.n2, c.pos)
		if !sort.Float64sAreSorted(buf) {
			t.Fatalf("FillPairNull(%d,%d,%d) not sorted", c.n1, c.n2, c.pos)
		}
		for _, observed := range []float64{0, 0.5, 2, 10, buf[0], buf[worlds-1], buf[worlds/2]} {
			idx := sort.SearchFloat64s(buf, observed)
			want := float64(1+worlds-idx) / float64(worlds+1)
			got, _ := cache.PValue(c.n1, c.n2, c.pos, observed)
			if got != want {
				t.Fatalf("key (%d,%d,%d) obs %v: cache p=%v, FillPairNull p=%v", c.n1, c.n2, c.pos, observed, got, want)
			}
			if ref := NullCacheReferenceP(seed, worlds, c.n1, c.n2, c.pos, observed); got != ref {
				t.Fatalf("key (%d,%d,%d) obs %v: cache p=%v, reference p=%v", c.n1, c.n2, c.pos, observed, got, ref)
			}
		}
	}
}

// TestFillPairNullZeroAlloc pins the batched fill path at zero allocations:
// the whole point of the pre-warm buffer design is that steady-state fills
// reuse caller memory.
func TestFillPairNullZeroAlloc(t *testing.T) {
	buf := make([]float64, 999)
	if n := testing.AllocsPerRun(20, func() {
		FillPairNull(buf, 0xA110C, 150, 220, 91)
	}); n != 0 {
		t.Fatalf("FillPairNull allocates %.1f per run, want 0", n)
	}
}

// TestPrewarmIsHitMissNeutral verifies Prewarm materializes entries without
// touching the sweep-facing hit/miss counters, that subsequent PValue calls
// on prewarmed keys are hits with unchanged values, and that Capacity
// reflects the rounded-up entry bound.
func TestPrewarmIsHitMissNeutral(t *testing.T) {
	const seed, worlds = 0xBEE5, 99
	warm := NewPairNullCache(seed, worlds, 64)
	cold := NewPairNullCache(seed, worlds, 64)

	if !warm.Prewarm(80, 120, 40) {
		t.Fatal("first Prewarm of a key should fill")
	}
	if warm.Prewarm(120, 80, 40) {
		t.Fatal("Prewarm of a normalized-duplicate key should not refill")
	}
	if h, m, e := warm.Stats(); h != 0 || m != 0 || e != 0 {
		t.Fatalf("Prewarm moved stats: hits=%d misses=%d evictions=%d", h, m, e)
	}

	pw, hit := warm.PValue(80, 120, 40, 1.25)
	if !hit {
		t.Fatal("PValue after Prewarm should hit")
	}
	pc, hit := cold.PValue(80, 120, 40, 1.25)
	if hit {
		t.Fatal("cold PValue should miss")
	}
	if pw != pc {
		t.Fatalf("prewarmed p=%v differs from cold p=%v", pw, pc)
	}

	if got := warm.Capacity(); got != 64 {
		t.Fatalf("Capacity()=%d, want 64", got)
	}
	small := NewPairNullCache(seed, worlds, 3)
	if got := small.Capacity(); got != nullCacheShards {
		t.Fatalf("small cache Capacity()=%d, want %d", got, nullCacheShards)
	}
	if zero := NewPairNullCache(seed, 0, 8); zero.Prewarm(10, 10, 5) {
		t.Fatal("zero-worlds cache must not claim to fill")
	}
}
