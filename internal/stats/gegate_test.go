package stats

import (
	"math"
	"testing"
)

// TestTwoSidedPGEGate checks the GE gate against direct evaluation for every
// decision it can make, including adversarial alphas that ARE reachable
// p-values (boundary equality matters: the gate answers >=, not >).
func TestTwoSidedPGEGate(t *testing.T) {
	rng := NewRNG(31)
	alphas := []float64{0, 1e-300, 1e-12, 1e-3, 0.001, 0.01, 0.05, 0.157, 0.5, 1, math.Nextafter(1, 2), 2}
	for i := 0; i < 16; i++ {
		alphas = append(alphas, TwoSidedP(6*rng.Float64()))
	}
	for _, alpha := range alphas {
		g := NewTwoSidedPGEGate(alpha)
		zs := []float64{0, 1e-300, 0.5, 1, 1.96, 2.5758, 3, 5, 8, 12, 30, 40, 1e6, math.MaxFloat64, math.Inf(1)}
		for i := 0; i < 200; i++ {
			zs = append(zs, 8*rng.Float64())
		}
		// Dense ULP sweep around the gate's own band.
		for _, base := range []float64{g.passLo, g.failHi} {
			if base <= 0 || math.IsInf(base, 0) {
				continue
			}
			z := base
			for k := 0; k < 50; k++ {
				zs = append(zs, z)
				z = math.Nextafter(z, math.Inf(1))
			}
			z = base
			for k := 0; k < 50; k++ {
				zs = append(zs, z)
				z = math.Nextafter(z, 0)
			}
		}
		for _, z := range zs {
			want := TwoSidedP(z) >= alpha
			if got := g.GE(z); got != want {
				t.Fatalf("alpha=%g: GE(%g) = %v, want %v", alpha, z, got, want)
			}
			if got := g.GE(-z); got != want {
				t.Fatalf("alpha=%g: GE(%g) = %v, want %v (sign symmetry)", alpha, -z, got, want)
			}
		}
		if g.GE(math.NaN()) {
			t.Fatalf("alpha=%g: NaN z passed", alpha)
		}
	}
}

// TestTwoSidedPGEGateDecideRange checks that a decided interval agrees with
// direct evaluation at its endpoints and sampled interior points.
func TestTwoSidedPGEGateDecideRange(t *testing.T) {
	rng := NewRNG(37)
	for _, alpha := range []float64{1e-6, 0.001, 0.05, 0.5, 1} {
		g := NewTwoSidedPGEGate(alpha)
		for trial := 0; trial < 2000; trial++ {
			a, b := 8*rng.Float64(), 8*rng.Float64()
			if a > b {
				a, b = b, a
			}
			pass, decided := g.DecideRange(a, b)
			if !decided {
				continue
			}
			for _, z := range []float64{a, b, a + (b-a)*0.25, a + (b-a)*0.75} {
				if want := TwoSidedP(z) >= alpha; want != pass {
					t.Fatalf("alpha=%g: DecideRange(%g,%g)=%v but exact at z=%g is %v", alpha, a, b, pass, z, want)
				}
			}
		}
		// An undecidable NaN endpoint must never decide.
		if _, decided := g.DecideRange(math.NaN(), math.NaN()); decided {
			t.Fatalf("alpha=%g: NaN interval decided", alpha)
		}
	}
}

// TestMannWhitneyZNoTies pins bit-identity with the full kernel's Z across
// sizes and the whole cross range, plus the empty-sample NaN contract.
func TestMannWhitneyZNoTies(t *testing.T) {
	for _, sz := range [][2]int{{1, 1}, {3, 7}, {10, 10}, {41, 53}, {300, 300}} {
		n1, n2 := sz[0], sz[1]
		step := n1 * n2 / 97
		if step == 0 {
			step = 1
		}
		for c := 0; c <= n1*n2; c += step {
			want := MannWhitneyFromCross(c, n1, n2).Z
			if got := MannWhitneyZNoTies(c, n1, n2); got != want {
				t.Fatalf("ZNoTies(%d,%d,%d) = %v, want %v", c, n1, n2, got, want)
			}
		}
	}
	if !math.IsNaN(MannWhitneyZNoTies(0, 0, 5)) || !math.IsNaN(MannWhitneyZNoTies(0, 5, 0)) {
		t.Fatal("empty sample must give NaN z")
	}
}
