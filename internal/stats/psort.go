package stats

import (
	"slices"
	"sync"
)

// parallelSortThreshold is the slice length below which ParallelSortFloat64s
// stays sequential: goroutine and merge overhead beats the parallel win on
// small inputs, and the sequential path has no overhead to amortize.
const parallelSortThreshold = 1 << 12

// ParallelSortFloat64s sorts v ascending using up to workers goroutines: the
// slice is cut into equal segments, each sorted independently, then merged in
// pairwise parallel rounds through one auxiliary buffer. The result is the
// unique sorted permutation of v's values, identical to slices.Sort — equal
// float64 values are indistinguishable, so no merge order can be observed —
// which is what lets the FDR step sort p-values in parallel without touching
// the audit's determinism guarantee. NaN-free input is the caller's contract
// (matching slices.Sort, whose NaN ordering is unspecified).
func ParallelSortFloat64s(v []float64, workers int) {
	n := len(v)
	if workers <= 1 || n < parallelSortThreshold {
		slices.Sort(v)
		return
	}
	if workers > n {
		workers = n
	}

	// Segment boundaries: workers segments of near-equal length.
	bounds := make([]int, workers+1)
	for i := 0; i <= workers; i++ {
		bounds[i] = i * n / workers
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			slices.Sort(v[lo:hi])
		}(bounds[i], bounds[i+1])
	}
	wg.Wait()

	// Pairwise merge rounds, ping-ponging between v and aux. Each round
	// halves the number of sorted runs; merges within a round are disjoint
	// and run concurrently.
	aux := make([]float64, n)
	src, dst := v, aux
	for len(bounds) > 2 {
		next := make([]int, 0, len(bounds)/2+2)
		var mg sync.WaitGroup
		for i := 0; i+2 < len(bounds); i += 2 {
			lo, mid, hi := bounds[i], bounds[i+1], bounds[i+2]
			next = append(next, lo)
			mg.Add(1)
			go func(lo, mid, hi int) {
				defer mg.Done()
				mergeFloat64s(dst[lo:hi], src[lo:mid], src[mid:hi])
			}(lo, mid, hi)
		}
		if len(bounds)%2 == 0 {
			// Odd run count: the last run has no partner this round; carry it.
			lo, hi := bounds[len(bounds)-2], bounds[len(bounds)-1]
			next = append(next, lo)
			mg.Add(1)
			go func() {
				defer mg.Done()
				copy(dst[lo:hi], src[lo:hi])
			}()
		}
		next = append(next, n)
		mg.Wait()
		bounds = next
		src, dst = dst, src
	}
	if &src[0] != &v[0] {
		copy(v, src)
	}
}

// mergeFloat64s merges two sorted runs into dst (len(dst) == len(a)+len(b)).
func mergeFloat64s(dst, a, b []float64) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			dst[k] = a[i]
			i++
		} else {
			dst[k] = b[j]
			j++
		}
		k++
	}
	copy(dst[k:], a[i:])
	copy(dst[k+len(a)-i:], b[j:])
}
