package stats

import (
	"math"
	"testing"
)

func TestTwoProportionZEqualProportions(t *testing.T) {
	res := TwoProportionZ(50, 100, 500, 1000)
	if !almostEq(res.Z, 0, 1e-12) || !almostEq(res.P, 1, 1e-12) {
		t.Errorf("equal proportions: %+v", res)
	}
}

func TestTwoProportionZKnownValue(t *testing.T) {
	// p1=0.6 (120/200), p2=0.5 (100/200), pooled=0.55:
	// z = 0.1 / sqrt(0.55*0.45*(1/200+1/200)) = 2.0100756...
	res := TwoProportionZ(120, 200, 100, 200)
	if !almostEq(res.Z, 2.0100756305184243, 1e-9) {
		t.Errorf("z = %v", res.Z)
	}
	if !almostEq(res.P, TwoSidedP(res.Z), 1e-15) {
		t.Errorf("p inconsistent with z")
	}
}

func TestTwoProportionZDegenerate(t *testing.T) {
	if res := TwoProportionZ(0, 0, 5, 10); !math.IsNaN(res.P) {
		t.Errorf("zero n should give NaN, got %+v", res)
	}
	if res := TwoProportionZ(0, 10, 0, 20); res.P != 1 {
		t.Errorf("all-zero proportions should give P=1, got %+v", res)
	}
	if res := TwoProportionZ(10, 10, 20, 20); res.P != 1 {
		t.Errorf("all-one proportions should give P=1, got %+v", res)
	}
}

func TestTwoProportionZAntisymmetric(t *testing.T) {
	a := TwoProportionZ(30, 100, 60, 120)
	b := TwoProportionZ(60, 120, 30, 100)
	if !almostEq(a.Z, -b.Z, 1e-12) || !almostEq(a.P, b.P, 1e-12) {
		t.Errorf("not antisymmetric: %+v vs %+v", a, b)
	}
}

func TestTwoProportionZDetectsLargeGap(t *testing.T) {
	res := TwoProportionZ(900, 1000, 100, 1000)
	if res.P > 1e-20 {
		t.Errorf("huge gap p = %v, want tiny", res.P)
	}
}

func TestOneProportionZ(t *testing.T) {
	// phat = 0.7 vs p0 = 0.62, n = 400: z = 0.08/sqrt(0.62*0.38/400).
	res := OneProportionZ(280, 400, 0.62)
	want := 0.08 / math.Sqrt(0.62*0.38/400)
	if !almostEq(res.Z, want, 1e-9) {
		t.Errorf("z = %v, want %v", res.Z, want)
	}
	if r := OneProportionZ(10, 0, 0.5); !math.IsNaN(r.P) {
		t.Errorf("n=0 should be NaN")
	}
	if r := OneProportionZ(10, 20, 0); !math.IsNaN(r.P) {
		t.Errorf("p0=0 should be NaN")
	}
}
