package stats

import "math"

// This file is the bucketed cross-rank kernel behind the audit engine's
// no-ties Mann–Whitney fast path. The classic merge kernel walks two sorted
// samples with a loop-carried dependency — each step's branch (or select)
// waits on the previous step's loads — which caps it near ten cycles per
// element on data the branch predictor cannot memorize. The bucket kernel
// removes the dependency: values become order-preserving integer keys at
// prepare time, every region is summarized by per-bucket prefix counts on a
// shared equi-width grid, and a pair's cross count becomes an independent
// per-element lookup
//
//	#{x < y}  =  Pre[bucket(y)]  +  #{x in bucket(y) : x < y}
//
// where the within-bucket correction probes a fixed two slots branchlessly
// (elements of later buckets compare above y and contribute zero on their
// own) plus a rarely-taken spill loop for buckets holding more than two
// elements. Per-element work is a handful of independent loads and integer
// compares, so the out-of-order core overlaps elements instead of waiting on
// a merge cursor.
//
// Exactness does not depend on the grid: any monotone bucketing (including
// values clamped to the edge buckets) keeps bucket(x) < bucket(y) ⇒ x < y
// and x == y ⇒ same bucket, so the prefix-plus-correction count equals the
// exact cross count and tie detection inspects exactly the candidate bucket.

// OrderedKey maps a float64 to a uint64 that preserves <, ==, and > for all
// finite and infinite values: the IEEE-754 bit pattern with the sign bit
// flipped for non-negatives and all bits flipped for negatives, and -0.0
// canonicalized to +0.0 first so equal floats always map to equal keys. NaN
// inputs yield unspecified order (callers validate samples upstream).
func OrderedKey(v float64) uint64 {
	if v == 0 { //lint:floateq-ok zero-canonicalization: -0.0 and +0.0 must share a key
		v = 0
	}
	u := math.Float64bits(v)
	if u>>63 == 1 {
		return ^u
	}
	return u | 1<<63
}

// RankGridBuckets is the grid resolution used by the audit engine: fine
// enough that typical region samples leave most buckets holding at most the
// two branchlessly-probed slots, small enough that one region's prefix table
// (4*(RankGridBuckets+1) bytes) stays L1-resident across a probe row.
const RankGridBuckets = 2048

// RankGrid is a shared equi-width value grid. All RankedSamples compared
// against each other must be built on the same grid.
type RankGrid struct {
	Lo      float64
	Scale   float64 // Buckets / (Hi - Lo)
	Buckets int
}

// NewRankGrid builds the grid covering [lo, hi] with the given bucket count.
// ok is false when the span is degenerate (lo >= hi, non-finite bounds, or a
// non-finite scale): cross counts would still be exact on such a grid, but
// every element would land in one bucket and the correction scan would
// degrade to the full merge — callers should fall back to the merge kernels
// instead.
func NewRankGrid(lo, hi float64, buckets int) (RankGrid, bool) {
	if buckets < 1 || math.IsInf(lo, 0) || math.IsInf(hi, 0) || math.IsNaN(lo) || math.IsNaN(hi) || !(lo < hi) {
		return RankGrid{}, false
	}
	scale := float64(buckets) / (hi - lo)
	if math.IsInf(scale, 0) || math.IsNaN(scale) || scale <= 0 {
		return RankGrid{}, false
	}
	return RankGrid{Lo: lo, Scale: scale, Buckets: buckets}, true
}

// Bucket returns v's grid bucket, clamped to [0, Buckets-1]. Clamping keeps
// the mapping monotone for values outside the grid's span (delta updates can
// introduce them), which is all the cross-count kernels require.
func (g RankGrid) Bucket(v float64) int {
	b := int((v - g.Lo) * g.Scale)
	if b < 0 {
		b = 0
	}
	if b >= g.Buckets {
		b = g.Buckets - 1
	}
	return b
}

// RankedSample is one sorted sample prepared for the bucketed cross-rank
// kernels: ordered keys (sentinel-padded), per-element bucket ids, and the
// grid's prefix counts. The audit engine backs these slices with shared
// flat arenas indexed by region ordinal (see core's SoA layout).
type RankedSample struct {
	// Keys holds the N ordered keys ascending, padded with two ^uint64(0)
	// sentinels so the kernels' fixed two-slot probes never read out of
	// bounds. No finite or infinite float maps to the sentinel key, so
	// sentinels can never produce a spurious tie.
	Keys []uint64
	// Buk[i] is the grid bucket of element i.
	Buk []int32
	// Pre[b] counts elements in buckets < b; len(Pre) == Buckets+1. Elements
	// of bucket b occupy Keys[Pre[b]:Pre[b+1]].
	Pre []int32
	// PreC is Pre subsampled at group boundaries — PreC[g] == Pre[g*Buckets/
	// groups] for groups == CoarseGroups(Buckets) — the cache-line-sized
	// digest CrossBoundsCoarse products against instead of streaming Pre.
	PreC []int32
	// N is the sample size.
	N int
	// Distinct reports the sample is strictly increasing (no within-sample
	// duplicate values) — a precondition of the no-ties kernels.
	Distinct bool
}

// FillRankedSample builds rs from a sorted sample on grid g, reusing rs's
// slices when they have sufficient capacity (the audit engine hands in views
// of flat arenas; tests may pass a zero RankedSample and let it allocate).
// The sample must be sorted ascending and NaN-free.
func FillRankedSample(g RankGrid, sorted []float64, rs *RankedSample) {
	n := len(sorted)
	if cap(rs.Keys) < n+2 {
		rs.Keys = make([]uint64, n+2)
	}
	if cap(rs.Buk) < n {
		rs.Buk = make([]int32, n)
	}
	if cap(rs.Pre) < g.Buckets+1 {
		rs.Pre = make([]int32, g.Buckets+1)
	}
	groups := CoarseGroups(g.Buckets)
	if cap(rs.PreC) < groups+1 {
		rs.PreC = make([]int32, groups+1)
	}
	rs.Keys = rs.Keys[:n+2]
	rs.Buk = rs.Buk[:n]
	rs.Pre = rs.Pre[:g.Buckets+1]
	rs.PreC = rs.PreC[:groups+1]
	rs.N = n

	for i := range rs.Pre {
		rs.Pre[i] = 0
	}
	distinct := true
	var prev uint64
	for i, v := range sorted {
		k := OrderedKey(v)
		if i > 0 && k == prev {
			distinct = false
		}
		prev = k
		rs.Keys[i] = k
		b := g.Bucket(v)
		rs.Buk[i] = int32(b)
		rs.Pre[b+1]++
	}
	rs.Keys[n] = ^uint64(0)
	rs.Keys[n+1] = ^uint64(0)
	for b := 0; b < g.Buckets; b++ {
		rs.Pre[b+1] += rs.Pre[b]
	}
	for gi := 0; gi <= groups; gi++ {
		rs.PreC[gi] = rs.Pre[gi*g.Buckets/groups]
	}
	rs.Distinct = distinct
}

// StrictlyIncreasing reports whether a sorted sample has no duplicate values
// — the within-sample half of the no-ties precondition. (-0.0 and +0.0 count
// as duplicates, matching the tie-grouping of the general rank kernels.)
func StrictlyIncreasing(sorted []float64) bool {
	for i := 1; i < len(sorted); i++ {
		if !(sorted[i-1] < sorted[i]) {
			return false
		}
	}
	return true
}

// CrossCount returns #{(x, y) : x > y} over a's and b's elements, and
// ok=false when some x equals some y (a cross-sample tie), in which case
// cross is meaningless and the caller must use the general tie-aware kernel.
// Both samples must be individually strictly increasing (Distinct) and built
// on the same grid; within-sample duplicates are NOT detected here and would
// silently corrupt the tie-correction term downstream.
//
// The loop is branch-light by construction: per element, two prefix loads,
// two branchless slot probes, and a spill loop whose guard is false for all
// but the rare overfull bucket.
//
//lint:hotpath
func CrossCount(a, b *RankedSample) (cross int, ok bool) {
	n1, n2 := a.N, b.N
	if n1 == 0 || n2 == 0 {
		return 0, true
	}
	xk := a.Keys
	pre := a.Pre
	yb := b.Buk
	yk := b.Keys
	less := 0
	tied := false
	for t := 0; t < n2; t++ {
		bb := yb[t]
		p0 := int(pre[bb])
		p1 := int(pre[bb+1])
		y := yk[t]
		x0 := xk[p0]
		x1 := xk[p0+1]
		l := p0
		if x0 < y {
			l++
		}
		if x1 < y {
			l++
		}
		if x0 == y || x1 == y {
			tied = true
		}
		if p1-p0 > 2 {
			for k := p0 + 2; k < p1; k++ {
				x := xk[k]
				if x < y {
					l++
				} else if x == y {
					tied = true
				}
			}
		}
		less += l
	}
	return n1*n2 - less, !tied
}

// CrossCountNoTies is CrossCount without tie detection, for callers that
// have verified no value occurs twice anywhere in the compared universe
// (the audit engine's global-distinct prepare check). With that guarantee
// the equality probes can never fire, so the kernel drops them.
//
//lint:hotpath
func CrossCountNoTies(a, b *RankedSample) int {
	n1, n2 := a.N, b.N
	if n1 == 0 || n2 == 0 {
		return 0
	}
	xk := a.Keys
	pre := a.Pre
	yb := b.Buk
	yk := b.Keys
	le0, le1 := 0, 0
	t := 0
	for ; t+2 <= n2; t += 2 {
		b0, b1 := yb[t], yb[t+1]
		y0, y1 := yk[t], yk[t+1]
		p00, p01 := int(pre[b0]), int(pre[b0+1])
		p10, p11 := int(pre[b1]), int(pre[b1+1])
		l := p00
		if xk[p00] < y0 {
			l++
		}
		if xk[p00+1] < y0 {
			l++
		}
		le0 += l
		l = p10
		if xk[p10] < y1 {
			l++
		}
		if xk[p10+1] < y1 {
			l++
		}
		le1 += l
		if p01-p00 > 2 {
			for k := p00 + 2; k < p01; k++ {
				if xk[k] < y0 {
					le0++
				}
			}
		}
		if p11-p10 > 2 {
			for k := p10 + 2; k < p11; k++ {
				if xk[k] < y1 {
					le1++
				}
			}
		}
	}
	for ; t < n2; t++ {
		bb := yb[t]
		p0 := int(pre[bb])
		p1 := int(pre[bb+1])
		y := yk[t]
		l := p0
		if xk[p0] < y {
			l++
		}
		if xk[p0+1] < y {
			l++
		}
		if p1-p0 > 2 {
			for k := p0 + 2; k < p1; k++ {
				if xk[k] < y {
					l++
				}
			}
		}
		le0 += l
	}
	return n1*n2 - (le0 + le1)
}

// CrossBounds returns a certain interval [lo, hi] containing the exact cross
// count #{(x, y) : x > y} of the pair, from prefix loads alone: for a partner
// element y in bucket b, the probe's elements in earlier buckets (Pre[b]) are
// certainly below y and those in later buckets certainly not, so summing
// Pre[b] and Pre[b+1] over the partner's elements brackets #{x < y} without
// touching the keys. The interval's width is the number of colocated (same
// bucket) element pairs — a few buckets' worth on a healthy grid — and the
// pass streams only the partner's bucket ids (4 bytes/element against the
// exact kernel's 12), so a caller that can decide its predicate from the
// interval (see MannWhitneyCrossGate.DecideRange) skips the exact kernel and
// most of its memory traffic. Valid for any samples on a shared grid, ties or
// not (the interval brackets the no-ties cross count the exact kernels
// compute).
//
//lint:hotpath
func CrossBounds(a, b *RankedSample) (lo, hi int) {
	n1, n2 := a.N, b.N
	if n1 == 0 || n2 == 0 {
		return 0, 0
	}
	pre := a.Pre
	yb := b.Buk
	// Two independent accumulator pairs so the adds overlap; the loads are
	// from one hot prefix table plus the partner's sequential bucket ids.
	le0, le1, he0, he1 := 0, 0, 0, 0
	t := 0
	for ; t+2 <= n2; t += 2 {
		b0, b1 := yb[t], yb[t+1]
		le0 += int(pre[b0])
		he0 += int(pre[b0+1])
		le1 += int(pre[b1])
		he1 += int(pre[b1+1])
	}
	if t < n2 {
		bb := yb[t]
		le0 += int(pre[bb])
		he0 += int(pre[bb+1])
	}
	total := n1 * n2
	return total - (he0 + he1), total - (le0 + le1)
}

// RankCoarseGroups is the resolution of the PreC digest: the grid's buckets
// are cut into this many equal groups, making PreC a quarter-kilobyte table
// that stays cache-resident per region while still bracketing a pair's cross
// count tightly enough to decide the common case (see CrossBoundsCoarse).
const RankCoarseGroups = 64

// CoarseGroups returns the PreC group count for a grid with the given bucket
// count: RankCoarseGroups, clamped so a group never spans less than one
// bucket.
func CoarseGroups(buckets int) int {
	if buckets < RankCoarseGroups {
		return buckets
	}
	return RankCoarseGroups
}

// CrossBoundsCoarse is CrossBounds at group resolution, computed from the two
// PreC digests alone. For a partner element y whose bucket falls in group g
// (fine buckets [g*B/G, (g+1)*B/G)), at least PreC_a[g] probe elements are
// certainly below it and at most PreC_a[g+1] are not certainly above, and the
// partner's element count per group is a difference of its own PreC entries —
// so the whole bracket is a histogram product over G groups, touching ~one
// cache line per sample instead of the partner's per-element bucket ids. The
// interval is wider than CrossBounds' (it brackets by group colocation, a
// superset of bucket colocation) but still certainly contains the exact
// no-ties cross count, so a caller that can decide its predicate from this
// interval (the common case — see the fast audit cascade) skips both the
// per-element bounds pass and the exact kernel. Both samples must be built on
// the same grid (equal-length PreC tables).
//
//lint:hotpath
func CrossBoundsCoarse(a, b *RankedSample) (lo, hi int) {
	n1, n2 := a.N, b.N
	if n1 == 0 || n2 == 0 {
		return 0, 0
	}
	pa, pb := a.PreC, b.PreC
	groups := len(pa) - 1
	le, he := 0, 0
	prevB, prevA := 0, 0 // PreC[0] is 0 by construction
	for g := 1; g <= groups; g++ {
		curB, curA := int(pb[g]), int(pa[g])
		cnt := curB - prevB
		le += cnt * prevA
		he += cnt * curA
		prevB, prevA = curB, curA
	}
	total := n1 * n2
	return total - he, total - le
}

// MannWhitneyFromCross finishes the no-ties Mann–Whitney U test from an
// exact cross count #{(x, y) : x > y} for sample sizes n1 (the x side) and
// n2. With no ties anywhere, the first sample's rank sum is exactly
// n1(n1+1)/2 + cross — an integer well inside float64's exact range for any
// in-memory sample — so the result is bit-identical to MannWhitneyUSorted on
// the same data: the general kernel accumulates the same integer rank sum in
// exact float64 steps and finishes through the same arithmetic with a zero
// tie term.
//
//lint:hotpath
func MannWhitneyFromCross(cross, n1, n2 int) MannWhitneyResult {
	if n1 == 0 || n2 == 0 {
		return MannWhitneyResult{U: math.NaN(), Z: math.NaN(), P: math.NaN()}
	}
	rankSum1 := float64(n1)*float64(n1+1)/2 + float64(cross)
	return mannWhitneyFromRankSum(rankSum1, 0, n1, n2)
}
