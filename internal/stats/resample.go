package stats

import (
	"math"
	"sort"
)

// BootstrapCI estimates a percentile confidence interval for a statistic by
// resampling with replacement: resamples draws of len(xs) observations each,
// the statistic computed on every draw, and the (alpha/2, 1-alpha/2)
// quantiles of the resulting distribution returned. It is used to attach
// uncertainty to per-region rates and income summaries in reports.
func BootstrapCI(xs []float64, statistic func([]float64) float64, resamples int, alpha float64, rng *RNG) (lo, hi float64) {
	if len(xs) == 0 || resamples < 1 || alpha <= 0 || alpha >= 1 {
		return math.NaN(), math.NaN()
	}
	draws := make([]float64, resamples)
	buf := make([]float64, len(xs))
	for r := 0; r < resamples; r++ {
		for i := range buf {
			buf[i] = xs[rng.Intn(len(xs))]
		}
		draws[r] = statistic(buf)
	}
	sort.Float64s(draws)
	return Quantile(draws, alpha/2), Quantile(draws, 1-alpha/2)
}

// SpearmanRho returns Spearman's rank correlation coefficient of the paired
// samples (mid-ranks for ties), or NaN for mismatched or short inputs. The
// census tests use it to verify the planted income/minority-share spatial
// correlation without assuming linearity.
func SpearmanRho(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return math.NaN()
	}
	rx := ranks(xs)
	ry := ranks(ys)
	return pearson(rx, ry)
}

// ranks returns mid-ranks (1-based) of the sample.
func ranks(xs []float64) []float64 {
	n := len(xs)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return xs[order[a]] < xs[order[b]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j < n && xs[order[j]] == xs[order[i]] { //lint:floateq-ok exact-tie-grouping
			j++
		}
		mid := float64(i+j+1) / 2
		for k := i; k < j; k++ {
			out[order[k]] = mid
		}
		i = j
	}
	return out
}

// pearson returns the Pearson correlation of the paired samples.
func pearson(xs, ys []float64) float64 {
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	den := math.Sqrt(sxx * syy)
	if den == 0 { //lint:floateq-ok degenerate-variance-sentinel
		return math.NaN()
	}
	return sxy / den
}

// Pearson returns the Pearson correlation coefficient of the paired samples,
// or NaN for mismatched, short, or constant inputs.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	return pearson(xs, ys)
}
