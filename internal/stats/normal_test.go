package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct {
		z, want float64
	}{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145705},
		{1.959963984540054, 0.975},
		{-2.5758293035489004, 0.005},
	}
	for _, c := range cases {
		if got := NormalCDF(c.z); !almostEq(got, c.want, 1e-9) {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.z, got, c.want)
		}
	}
}

func TestNormalSFComplements(t *testing.T) {
	for _, z := range []float64{-3, -1, 0, 0.5, 2, 4} {
		if got := NormalCDF(z) + NormalSF(z); !almostEq(got, 1, 1e-12) {
			t.Errorf("CDF+SF at %v = %v", z, got)
		}
	}
	// Far tail should stay positive rather than underflow to exactly the
	// complement rounding.
	if sf := NormalSF(8); sf <= 0 || sf > 1e-14 {
		t.Errorf("NormalSF(8) = %v", sf)
	}
}

func TestTwoSidedP(t *testing.T) {
	if p := TwoSidedP(0); p != 1 {
		t.Errorf("TwoSidedP(0) = %v", p)
	}
	if p := TwoSidedP(1.959963984540054); !almostEq(p, 0.05, 1e-9) {
		t.Errorf("TwoSidedP(1.96) = %v, want 0.05", p)
	}
	if p1, p2 := TwoSidedP(2.3), TwoSidedP(-2.3); p1 != p2 {
		t.Errorf("TwoSidedP not symmetric: %v vs %v", p1, p2)
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct {
		p, want float64
	}{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.025, -1.959963984540054},
		{0.9995, 3.290526731491926},
		{0.0005, -3.290526731491926},
		{0.84134474606854293, 1},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); !almostEq(got, c.want, 1e-7) {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("endpoints should be infinite")
	}
	if !math.IsNaN(NormalQuantile(-0.1)) || !math.IsNaN(NormalQuantile(1.1)) {
		t.Error("out-of-range p should be NaN")
	}
}

// Property: NormalQuantile inverts NormalCDF across the usable range.
func TestNormalQuantileInvertsCDF(t *testing.T) {
	f := func(raw float64) bool {
		p := math.Abs(math.Mod(raw, 1))
		if p < 1e-10 || p > 1-1e-10 {
			return true
		}
		z := NormalQuantile(p)
		return almostEq(NormalCDF(z), p, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
