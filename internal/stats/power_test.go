package stats

import (
	"math"
	"testing"

	"lcsf/internal/testutil"
)

func TestTwoProportionPowerKnownBehavior(t *testing.T) {
	// No gap: power equals the significance level (size of the test).
	if got := TwoProportionPower(0.6, 500, 0.6, 500, 0.05); !almostEq(got, 0.05, 0.01) {
		t.Errorf("null power = %v, want ~alpha", got)
	}
	// A huge gap with large samples: power ~1.
	if got := TwoProportionPower(0.9, 500, 0.5, 500, 0.05); got < 0.999 {
		t.Errorf("big-gap power = %v, want ~1", got)
	}
	// Power grows with n.
	small := TwoProportionPower(0.7, 50, 0.6, 50, 0.05)
	large := TwoProportionPower(0.7, 500, 0.6, 500, 0.05)
	if large <= small {
		t.Errorf("power should grow with n: %v -> %v", small, large)
	}
	// Power shrinks as alpha tightens.
	loose := TwoProportionPower(0.7, 200, 0.6, 200, 0.05)
	tight := TwoProportionPower(0.7, 200, 0.6, 200, 0.001)
	if tight >= loose {
		t.Errorf("power should shrink with alpha: %v -> %v", loose, tight)
	}
}

func TestTwoProportionPowerMatchesSimulation(t *testing.T) {
	rng := NewRNG(31)
	p1, p2, n, alpha := 0.70, 0.55, 150, 0.05
	want := TwoProportionPower(p1, n, p2, n, alpha)
	trials, rejected := 2000, 0
	for i := 0; i < trials; i++ {
		k1 := rng.Binomial(n, p1)
		k2 := rng.Binomial(n, p2)
		if TwoProportionZ(k1, n, k2, n).P <= alpha {
			rejected++
		}
	}
	got := float64(rejected) / float64(trials)
	if math.Abs(got-want) > 0.05 {
		t.Errorf("simulated power %v vs analytic %v", got, want)
	}
}

func TestTwoProportionPowerDegenerate(t *testing.T) {
	if !math.IsNaN(TwoProportionPower(0.5, 0, 0.5, 10, 0.05)) {
		t.Error("n=0 should be NaN")
	}
	if !math.IsNaN(TwoProportionPower(1.5, 10, 0.5, 10, 0.05)) {
		t.Error("p>1 should be NaN")
	}
	if !math.IsNaN(TwoProportionPower(0.5, 10, 0.5, 10, 0)) {
		t.Error("alpha=0 should be NaN")
	}
	// Both proportions at the boundary: se1=0.
	testutil.InDelta(t, "certain gap power", TwoProportionPower(1, 10, 0, 10, 0.05), 1, 0)
	testutil.InDelta(t, "certain no-gap power", TwoProportionPower(1, 10, 1, 10, 0.05), 0.05, 0)
}

func TestSampleSizeForGap(t *testing.T) {
	n := SampleSizeForGap(0.70, 0.55, 0.05, 0.8)
	if n <= 0 {
		t.Fatalf("n = %d", n)
	}
	// The returned n achieves the power; n-1 does not.
	if got := TwoProportionPower(0.70, n, 0.55, n, 0.05); got < 0.8 {
		t.Errorf("power at n=%d is %v, want >= 0.8", n, got)
	}
	if got := TwoProportionPower(0.70, n-1, 0.55, n-1, 0.05); got >= 0.8 {
		t.Errorf("power at n-1=%d is %v, should be < 0.8", n-1, got)
	}
	// Standard reference: detecting 0.15 at 80%/5% needs roughly 150-170
	// per group.
	if n < 120 || n > 220 {
		t.Errorf("n = %d, far from the textbook ballpark", n)
	}
	// The paper's Table 3 point: at ~42 outlets per region, a 15-point gap
	// is undetectable.
	if p := TwoProportionPower(0.70, 42, 0.55, 42, 0.01); p > 0.35 {
		t.Errorf("power at n=42 = %v; the sparsity collapse needs this low", p)
	}
}

func TestSampleSizeForGapDegenerate(t *testing.T) {
	if SampleSizeForGap(0.5, 0.5, 0.05, 0.8) != -1 {
		t.Error("no gap should be -1")
	}
	if SampleSizeForGap(0.5, 0.6, 0, 0.8) != -1 {
		t.Error("bad alpha should be -1")
	}
	if SampleSizeForGap(0.5, 0.6, 0.05, 1) != -1 {
		t.Error("power=1 should be -1")
	}
}

func TestSampleSizeMonotoneInGap(t *testing.T) {
	big := SampleSizeForGap(0.70, 0.50, 0.05, 0.8)
	small := SampleSizeForGap(0.70, 0.65, 0.05, 0.8)
	if big >= small {
		t.Errorf("smaller gaps need more samples: gap0.2->%d, gap0.05->%d", big, small)
	}
}
