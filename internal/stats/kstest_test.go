package stats

import (
	"math"
	"testing"
)

func TestKSIdenticalSamples(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	res := KolmogorovSmirnov(xs, xs)
	if res.D != 0 {
		t.Errorf("D = %v, want 0", res.D)
	}
	if res.P < 0.99 {
		t.Errorf("P = %v, want ~1", res.P)
	}
}

func TestKSDisjointSamples(t *testing.T) {
	xs := make([]float64, 100)
	ys := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = float64(i) + 1000
	}
	res := KolmogorovSmirnov(xs, ys)
	if res.D != 1 {
		t.Errorf("D = %v, want 1", res.D)
	}
	if res.P > 1e-10 {
		t.Errorf("P = %v, want ~0", res.P)
	}
}

func TestKSEmptySample(t *testing.T) {
	res := KolmogorovSmirnov(nil, []float64{1})
	if !math.IsNaN(res.P) || !math.IsNaN(res.D) {
		t.Errorf("empty sample should be NaN: %+v", res)
	}
}

func TestKSSymmetric(t *testing.T) {
	rng := NewRNG(41)
	xs := make([]float64, 80)
	ys := make([]float64, 120)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	for i := range ys {
		ys[i] = rng.NormFloat64() + 0.3
	}
	a := KolmogorovSmirnov(xs, ys)
	b := KolmogorovSmirnov(ys, xs)
	if !almostEq(a.D, b.D, 1e-12) || !almostEq(a.P, b.P, 1e-12) {
		t.Errorf("not symmetric: %+v vs %+v", a, b)
	}
}

func TestKSDetectsSpreadDifference(t *testing.T) {
	// Same mean, different spread: the U test is blind to this, KS is not —
	// the reason KS is offered as an alternative similarity gate.
	rng := NewRNG(42)
	n := 500
	narrow := make([]float64, n)
	wide := make([]float64, n)
	for i := 0; i < n; i++ {
		narrow[i] = rng.NormFloat64() * 0.5
		wide[i] = rng.NormFloat64() * 2.0
	}
	ks := KolmogorovSmirnov(narrow, wide)
	if ks.P > 1e-6 {
		t.Errorf("KS should detect the spread difference: p = %v", ks.P)
	}
	mw := MannWhitneyU(narrow, wide)
	if mw.P < 0.01 {
		t.Errorf("U test should NOT detect the pure spread difference: p = %v", mw.P)
	}
}

func TestKSFalsePositiveRate(t *testing.T) {
	rng := NewRNG(43)
	trials, sig := 300, 0
	for tr := 0; tr < trials; tr++ {
		xs := make([]float64, 60)
		ys := make([]float64, 60)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
		}
		if KolmogorovSmirnov(xs, ys).P < 0.05 {
			sig++
		}
	}
	// The asymptotic KS p-value is conservative at these sizes.
	if frac := float64(sig) / float64(trials); frac > 0.09 {
		t.Errorf("null rejection rate %v, want <= ~0.09", frac)
	}
}

func TestKSWithTies(t *testing.T) {
	// Heavily tied integer data must not panic and D must be in [0,1].
	xs := []float64{1, 1, 1, 2, 2, 3}
	ys := []float64{1, 2, 2, 2, 3, 3}
	res := KolmogorovSmirnov(xs, ys)
	if res.D < 0 || res.D > 1 || math.IsNaN(res.P) {
		t.Errorf("tied result out of range: %+v", res)
	}
}
