package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBernoulliLogLikKnown(t *testing.T) {
	// 3 successes, 2 failures at rho=0.6: 3*ln(0.6)+2*ln(0.4).
	want := 3*math.Log(0.6) + 2*math.Log(0.4)
	if got := BernoulliLogLik(3, 5, 0.6); !almostEq(got, want, 1e-12) {
		t.Errorf("BernoulliLogLik = %v, want %v", got, want)
	}
}

func TestBernoulliLogLikEdges(t *testing.T) {
	if got := BernoulliLogLik(0, 5, 0); got != 0 {
		t.Errorf("k=0, rho=0 should be 0 (prob 1), got %v", got)
	}
	if got := BernoulliLogLik(5, 5, 1); got != 0 {
		t.Errorf("k=n, rho=1 should be 0, got %v", got)
	}
	if got := BernoulliLogLik(1, 5, 0); !math.IsInf(got, -1) {
		t.Errorf("impossible observation should be -Inf, got %v", got)
	}
	if got := BernoulliLogLik(4, 5, 1); !math.IsInf(got, -1) {
		t.Errorf("impossible observation should be -Inf, got %v", got)
	}
	if got := BernoulliLogLik(6, 5, 0.5); !math.IsNaN(got) {
		t.Errorf("k>n should be NaN, got %v", got)
	}
}

// Property: the MLE rho = k/n maximizes the Bernoulli log-likelihood.
func TestMaxBernoulliLogLikIsMaximum(t *testing.T) {
	f := func(kRaw, nRaw uint16, rhoRaw float64) bool {
		n := int(nRaw%1000) + 1
		k := int(kRaw) % (n + 1)
		rho := math.Abs(math.Mod(rhoRaw, 1))
		if rho == 0 {
			rho = 0.37
		}
		atMLE := MaxBernoulliLogLik(k, n)
		at := BernoulliLogLik(k, n, rho)
		return at <= atMLE+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLogLikRatio(t *testing.T) {
	if got := LogLikRatio(-10, -4); !almostEq(got, 12, 1e-12) {
		t.Errorf("LogLikRatio = %v, want 12", got)
	}
	if got := LogLikRatio(math.Inf(-1), math.Inf(-1)); got != 0 {
		t.Errorf("both -Inf should be 0, got %v", got)
	}
	if got := LogLikRatio(math.Inf(-1), -3); !math.IsInf(got, 1) {
		t.Errorf("impossible null should be +Inf, got %v", got)
	}
}

func TestPairLRTZeroWhenRatesEqual(t *testing.T) {
	if got := PairLRT(50, 100, 100, 200); !almostEq(got, 0, 1e-9) {
		t.Errorf("equal rates PairLRT = %v, want 0", got)
	}
}

func TestPairLRTPositiveAndMonotone(t *testing.T) {
	small := PairLRT(55, 100, 45, 100)
	large := PairLRT(90, 100, 10, 100)
	if small <= 0 || large <= 0 {
		t.Fatalf("LRT should be positive for unequal rates: %v, %v", small, large)
	}
	if large <= small {
		t.Errorf("larger gap should give larger statistic: %v vs %v", small, large)
	}
}

// Property: PairLRT is non-negative and symmetric in its two regions.
func TestPairLRTNonNegativeSymmetricQuick(t *testing.T) {
	f := func(p1Raw, n1Raw, p2Raw, n2Raw uint16) bool {
		n1 := int(n1Raw%2000) + 1
		n2 := int(n2Raw%2000) + 1
		p1 := int(p1Raw) % (n1 + 1)
		p2 := int(p2Raw) % (n2 + 1)
		a := PairLRT(p1, n1, p2, n2)
		b := PairLRT(p2, n2, p1, n1)
		return a >= -1e-9 && almostEq(a, b, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPairLRTMatchesChiSquareScale(t *testing.T) {
	// For moderate counts the LRT statistic approximates the chi-square
	// statistic of a 2x2 table; check against a hand-computed G-statistic.
	p1, n1, p2, n2 := 70, 100, 50, 100
	pool := float64(p1+p2) / float64(n1+n2)
	g := 2 * (float64(p1)*math.Log(0.7/pool) +
		float64(n1-p1)*math.Log(0.3/(1-pool)) +
		float64(p2)*math.Log(0.5/pool) +
		float64(n2-p2)*math.Log(0.5/(1-pool)))
	if got := PairLRT(p1, n1, p2, n2); !almostEq(got, g, 1e-9) {
		t.Errorf("PairLRT = %v, want G = %v", got, g)
	}
}

func TestCompositionLogLik(t *testing.T) {
	if got := CompositionLogLik(0, 0, 0); got != 0 {
		t.Errorf("empty region composition = %v, want 0", got)
	}
	// nG=30, nV=70, n=100: MaxBernoulli(30,100) + MaxBernoulli(70,100).
	want := MaxBernoulliLogLik(30, 100) + MaxBernoulliLogLik(70, 100)
	if got := CompositionLogLik(30, 70, 100); !almostEq(got, want, 1e-12) {
		t.Errorf("CompositionLogLik = %v, want %v", got, want)
	}
}

func TestPairAlternativeLogLikDecomposes(t *testing.T) {
	got := PairAlternativeLogLik(40, 100, 30, 70, 60, 120, 50, 70)
	want := MaxBernoulliLogLik(40, 100) + CompositionLogLik(30, 70, 100) +
		MaxBernoulliLogLik(60, 120) + CompositionLogLik(50, 70, 120)
	if !almostEq(got, want, 1e-12) {
		t.Errorf("PairAlternativeLogLik = %v, want %v", got, want)
	}
}

func TestRegionVsOutsideLRT(t *testing.T) {
	// Region exactly at the global rate: statistic 0.
	if got := RegionVsOutsideLRT(62, 100, 620, 1000); !almostEq(got, 0, 1e-9) {
		t.Errorf("at-global-rate LRT = %v, want 0", got)
	}
	// Region far from the global rate: strongly positive.
	if got := RegionVsOutsideLRT(90, 100, 620, 1000); got < 10 {
		t.Errorf("deviating region LRT = %v, want large", got)
	}
	if got := RegionVsOutsideLRT(10, 0, 100, 1000); got != 0 {
		t.Errorf("empty region should be 0, got %v", got)
	}
	if got := RegionVsOutsideLRT(10, 100, 10, 100); got != 0 {
		t.Errorf("region covering all data should be 0, got %v", got)
	}
}
