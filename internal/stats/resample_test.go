package stats

import (
	"math"
	"testing"
)

func TestBootstrapCICoversTrueMean(t *testing.T) {
	rng := NewRNG(21)
	covered := 0
	trials := 100
	for tr := 0; tr < trials; tr++ {
		xs := make([]float64, 100)
		for i := range xs {
			xs[i] = 10 + 2*rng.NormFloat64()
		}
		lo, hi := BootstrapCI(xs, Mean, 400, 0.05, rng)
		if lo <= 10 && 10 <= hi {
			covered++
		}
		if lo > hi {
			t.Fatalf("lo %v > hi %v", lo, hi)
		}
	}
	// Nominal coverage 95%; allow slack for bootstrap + Monte-Carlo noise.
	if covered < 85 {
		t.Errorf("coverage %d/%d, want >= 85", covered, trials)
	}
}

func TestBootstrapCIDegenerate(t *testing.T) {
	rng := NewRNG(22)
	if lo, hi := BootstrapCI(nil, Mean, 100, 0.05, rng); !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Error("empty sample should be NaN")
	}
	if lo, hi := BootstrapCI([]float64{1, 2}, Mean, 0, 0.05, rng); !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Error("zero resamples should be NaN")
	}
	if lo, hi := BootstrapCI([]float64{1, 2}, Mean, 10, 0, rng); !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Error("alpha=0 should be NaN")
	}
	// A constant sample has a point interval.
	lo, hi := BootstrapCI([]float64{7, 7, 7}, Mean, 50, 0.05, rng)
	if lo != 7 || hi != 7 {
		t.Errorf("constant sample CI = [%v, %v]", lo, hi)
	}
}

func TestSpearmanRhoPerfectMonotone(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 4, 9, 16, 25} // monotone but nonlinear
	if rho := SpearmanRho(xs, ys); !almostEq(rho, 1, 1e-12) {
		t.Errorf("monotone rho = %v, want 1", rho)
	}
	rev := []float64{25, 16, 9, 4, 1}
	if rho := SpearmanRho(xs, rev); !almostEq(rho, -1, 1e-12) {
		t.Errorf("reversed rho = %v, want -1", rho)
	}
}

func TestSpearmanRhoIndependence(t *testing.T) {
	rng := NewRNG(23)
	n := 5000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = rng.NormFloat64()
	}
	if rho := SpearmanRho(xs, ys); math.Abs(rho) > 0.05 {
		t.Errorf("independent rho = %v, want ~0", rho)
	}
}

func TestSpearmanRhoTiesAndErrors(t *testing.T) {
	// Ties are handled through mid-ranks.
	xs := []float64{1, 1, 2, 2, 3}
	ys := []float64{1, 2, 2, 3, 3}
	rho := SpearmanRho(xs, ys)
	if math.IsNaN(rho) || rho <= 0 {
		t.Errorf("tied positive association rho = %v", rho)
	}
	if !math.IsNaN(SpearmanRho([]float64{1}, []float64{2})) {
		t.Error("short input should be NaN")
	}
	if !math.IsNaN(SpearmanRho([]float64{1, 2}, []float64{1})) {
		t.Error("mismatched input should be NaN")
	}
}

func TestPearsonLinear(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // exactly linear
	if r := Pearson(xs, ys); !almostEq(r, 1, 1e-12) {
		t.Errorf("linear r = %v", r)
	}
	if !math.IsNaN(Pearson(xs, []float64{2, 2, 2, 2})) {
		t.Error("constant series should be NaN")
	}
	if !math.IsNaN(Pearson(nil, nil)) {
		t.Error("empty should be NaN")
	}
}

func TestRanksMidRankTies(t *testing.T) {
	got := ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ranks = %v, want %v", got, want)
			break
		}
	}
}
