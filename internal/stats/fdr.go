package stats

import "sort"

// BenjaminiHochberg applies the Benjamini–Hochberg step-up procedure to a
// set of p-values, returning a boolean per input reporting whether that
// hypothesis is rejected at false-discovery rate q.
//
// The LC-SF audit tests thousands of region pairs; the paper controls each
// test at a fixed significance level, which bounds the per-pair error but
// not the share of false discoveries among the flagged pairs. FDR control is
// offered as an extension (Config.FDR in the core package) for auditors who
// need the flagged list itself to be mostly real.
func BenjaminiHochberg(pvalues []float64, q float64) []bool {
	n := len(pvalues)
	out := make([]bool, n)
	if n == 0 || q <= 0 {
		return out
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return pvalues[order[a]] < pvalues[order[b]] })

	// Find the largest k with p_(k) <= k/n * q.
	cut := -1
	for k := 1; k <= n; k++ {
		if pvalues[order[k-1]] <= float64(k)/float64(n)*q {
			cut = k
		}
	}
	for k := 0; k < cut; k++ {
		out[order[k]] = true
	}
	return out
}
