package stats

import (
	"math"
	"sort"
	"sync"
)

// BenjaminiHochberg applies the Benjamini–Hochberg step-up procedure to a
// set of p-values, returning a boolean per input reporting whether that
// hypothesis is rejected at false-discovery rate q.
//
// The LC-SF audit tests thousands of region pairs; the paper controls each
// test at a fixed significance level, which bounds the per-pair error but
// not the share of false discoveries among the flagged pairs. FDR control is
// offered as an extension (Config.FDR in the core package) for auditors who
// need the flagged list itself to be mostly real.
func BenjaminiHochberg(pvalues []float64, q float64) []bool {
	return BenjaminiHochbergWorkers(pvalues, q, 1)
}

// BenjaminiHochbergWorkers is BenjaminiHochberg with the sort and the marking
// pass parallelized across up to workers goroutines; every worker count
// (including 1, which runs fully sequentially) produces the identical
// rejection mask. Two structural facts make that cheap:
//
//   - The step-up rejection set is a pure value threshold: the cut k* is a
//     function of the sorted p-value multiset alone, and a tie group can
//     never straddle it — if p_(k) passes its threshold and p_(k+1) equals
//     it, p_(k+1) passes the strictly larger threshold too — so "rejected"
//     is exactly "p <= p_(k*)" and the marking pass is one compare per input
//     in any order.
//   - A rank-k threshold k/n*q never exceeds q, so only p-values at or below
//     q can ever satisfy the inequality, and the global rank of such a value
//     equals its rank within that subset (every excluded value is strictly
//     larger). The procedure therefore sorts only the subset — for audit
//     workloads a small fraction of the candidate set — instead of all n
//     values, while comparing against the same k/n*q lines.
//
// NaN p-values (which no LC-SF pipeline produces) void the rank equivalence,
// so any NaN falls back to the original full index sort.
func BenjaminiHochbergWorkers(pvalues []float64, q float64, workers int) []bool {
	n := len(pvalues)
	out := make([]bool, n)
	if n == 0 || q <= 0 {
		return out
	}
	small := make([]float64, 0, n)
	for _, p := range pvalues {
		if math.IsNaN(p) {
			return benjaminiHochbergNaN(pvalues, q)
		}
		if p <= q {
			small = append(small, p)
		}
	}
	if len(small) == 0 {
		return out
	}
	if workers > 1 && len(small) >= parallelSortThreshold {
		ParallelSortFloat64s(small, workers)
	} else {
		sort.Float64s(small)
	}

	// Find the largest k with p_(k) <= k/n * q; k is a global rank (see
	// above), while only the subset's prefix can satisfy the inequality.
	cut := -1
	for k := 1; k <= len(small); k++ {
		if small[k-1] <= float64(k)/float64(n)*q {
			cut = k
		}
	}
	if cut < 0 {
		return out
	}
	pstar := small[cut-1]
	if workers <= 1 || n < parallelSortThreshold {
		for i, p := range pvalues {
			out[i] = p <= pstar
		}
		return out
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = pvalues[i] <= pstar
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// benjaminiHochbergNaN is the pre-subset-reduction implementation, kept as
// the fallback for inputs containing NaN: it sorts an index permutation of
// the full input and marks the sorted prefix, reproducing the historical
// (comparator-placement-dependent) treatment of NaN ranks exactly.
func benjaminiHochbergNaN(pvalues []float64, q float64) []bool {
	n := len(pvalues)
	out := make([]bool, n)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return pvalues[order[a]] < pvalues[order[b]] })

	cut := -1
	for k := 1; k <= n; k++ {
		if pvalues[order[k-1]] <= float64(k)/float64(n)*q {
			cut = k
		}
	}
	for k := 0; k < cut; k++ {
		out[order[k]] = true
	}
	return out
}
