package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FloatEq flags == and != between floating-point operands. Exact float
// equality is almost always a bug in statistical code — accumulation order,
// FMA contraction, and compiler differences all perturb low bits, and NaN
// never compares equal to anything — so comparisons must be tolerance-based
// (see testutil.InDelta) or explicitly acknowledged.
//
// Deliberate exact comparisons (sentinel values, tie-breaking comparators
// over values copied from a single computation) are suppressed with a
// trailing or preceding //lint:floateq-ok comment. Test files are exempt:
// the fixture harness and table tests legitimately pin exact expected values,
// and the test sweep uses testutil.InDelta where tolerance is right.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc: "flag ==/!= between floating-point operands outside tests " +
		"unless marked //lint:floateq-ok",
	Run: runFloatEq,
}

// floatEqOkDirective is the escape-hatch comment, placed on the comparison's
// line or the line immediately above it.
const floatEqOkDirective = "lint:floateq-ok"

func runFloatEq(pass *Pass) error {
	for _, file := range pass.Files {
		filename := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(filename, "_test.go") {
			continue
		}
		allowed := directiveLines(pass.Fset, file, floatEqOkDirective)
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.Info.Types[bin.X].Type) && !isFloat(pass.Info.Types[bin.Y].Type) {
				return true
			}
			// Constant-foldable comparisons are computed exactly by the
			// compiler; there is nothing to drift.
			if pass.Info.Types[bin.X].Value != nil && pass.Info.Types[bin.Y].Value != nil {
				return true
			}
			if line := pass.Fset.Position(bin.Pos()).Line; allowed[line] {
				return true
			}
			pass.Reportf(bin.OpPos, "exact floating-point %s comparison; use a tolerance (math.Abs(a-b) <= eps or testutil.InDelta) or mark //lint:floateq-ok", bin.Op)
			return true
		})
	}
	return nil
}

// isFloat reports whether t's core type is a floating-point basic type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// directiveLines returns the set of lines on which the given //lint:...
// directive suppresses diagnostics: the comment's own line (trailing form)
// and the following line (preceding form).
func directiveLines(fset *token.FileSet, file *ast.File, directive string) map[int]bool {
	lines := map[int]bool{}
	for _, group := range file.Comments {
		for _, c := range group.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if strings.HasPrefix(text, directive) {
				line := fset.Position(c.Pos()).Line
				lines[line] = true
				lines[line+1] = true
			}
		}
	}
	return lines
}
