package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// errCheckAllowed lists callees whose error results may be dropped without a
// diagnostic, keyed by package path (functions) or by receiver type
// (methods). They either cannot fail in practice or their failure is
// uninteresting by contract:
//
//   - fmt printing: returns write errors from the destination; for the
//     terminal-report code paths here the destination is a strings.Builder,
//     bytes.Buffer, or standard stream, where failure is not actionable;
//   - bytes.Buffer and strings.Builder writers: documented to never return
//     a non-nil error.
var (
	errCheckAllowedPkgs = map[string]bool{
		"fmt": true,
	}
	errCheckAllowedRecvs = map[string]bool{
		"bytes.Buffer":    true,
		"strings.Builder": true,
	}
)

// ErrCheck is a lite errcheck: it flags expression statements that call a
// function returning an error and drop every result. Assigning to blank
// (`_ = f()`) is an explicit, greppable acknowledgement and is not flagged;
// neither are defer/go statements (the error is structurally unreachable
// there and flagging them produces noise, not fixes). Test files are exempt.
var ErrCheck = &Analyzer{
	Name: "errcheck",
	Doc: "flag unchecked error returns (expression-statement calls whose " +
		"error result is silently dropped) in non-test code",
	Run: runErrCheck,
}

func runErrCheck(pass *Pass) error {
	errType := types.Universe.Lookup("error").Type()
	for _, file := range pass.Files {
		filename := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(pass, call, errType) || errCheckAllowed(pass, call) {
				return true
			}
			pass.Reportf(call.Pos(), "error result of %s is dropped; handle it or assign to _ explicitly", calleeName(pass, call))
			return true
		})
	}
	return nil
}

// returnsError reports whether any of call's results is exactly error.
func returnsError(pass *Pass, call *ast.CallExpr, errType types.Type) bool {
	tv, ok := pass.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errType) {
				return true
			}
		}
		return false
	default:
		return types.Identical(t, errType)
	}
}

// errCheckAllowed consults the allowlists for call's callee.
func errCheckAllowed(pass *Pass, call *ast.CallExpr) bool {
	obj := calleeObject(pass, call)
	if obj == nil {
		return false
	}
	if fn, ok := obj.(*types.Func); ok {
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			recv := sig.Recv().Type()
			if ptr, ok := recv.(*types.Pointer); ok {
				recv = ptr.Elem()
			}
			if named, ok := recv.(*types.Named); ok && named.Obj().Pkg() != nil {
				key := named.Obj().Pkg().Path() + "." + named.Obj().Name()
				if errCheckAllowedRecvs[key] {
					return true
				}
			}
			return false
		}
	}
	return obj.Pkg() != nil && errCheckAllowedPkgs[obj.Pkg().Path()]
}

// calleeName renders the callee for the diagnostic message.
func calleeName(pass *Pass, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}
