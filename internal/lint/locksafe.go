package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockSafe enforces declared lock discipline: a struct field annotated
//
//	//lint:guardedby mu
//
// (on the field's line, or the line above it, inside the struct type) may
// only be read on paths where the sibling mutex mu is held (RLock or Lock
// for a sync.RWMutex, Lock for a sync.Mutex) and only written while Lock is
// held. "Held on the path" is a forward must-analysis over the function's
// CFG — the dataflow analogue of Lock-dominance: the meet over predecessors
// is intersection, so a lock must be taken on every path reaching the
// access. Fields of sync/atomic type must not carry guardedby at all:
// mixing atomic and mutex discipline on one field hides races from both.
//
// Conventions honored: functions whose name ends in "Locked" are exempt
// (the caller holds the lock by contract); deferred Unlock/RUnlock calls do
// not release the lock at their syntactic position; //lint:locksafe-ok on an
// access's line suppresses it (constructor initialization before the value
// is published is the intended use).
var LockSafe = &Analyzer{
	Name: "locksafe",
	Doc: "require //lint:guardedby-annotated fields to be accessed only while the named " +
		"mutex is held (Lock for writes, RLock/Lock for reads); suppress with //lint:locksafe-ok",
	Run: runLockSafe,
}

const (
	guardedByDirective  = "lint:guardedby"
	lockSafeOkDirective = "lint:locksafe-ok"
)

// lock-state lattice bits: a write lock implies read permission.
const (
	lockRead  = 1
	lockWrite = 2
)

// guardSpec records one annotated field.
type guardSpec struct {
	field *types.Var
	mu    string // sibling mutex field name
}

func runLockSafe(pass *Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		allowed := directiveLines(pass.Fset, file, lockSafeOkDirective)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if strings.HasSuffix(fn.Name.Name, "Locked") {
				continue // caller-holds-the-lock contract
			}
			checkLockDiscipline(pass, fn, guards, allowed)
		}
	}
	return nil
}

// collectGuards parses guardedby annotations in the package's struct types,
// validating the named mutex and rejecting atomics. The returned map is
// keyed by the guarded field's object (annotation and accesses are
// necessarily in the same package for unexported fields, and object
// identity holds within one package).
func collectGuards(pass *Pass) map[types.Object]guardSpec {
	guards := map[types.Object]guardSpec{}
	for _, file := range pass.Files {
		directives := guardedByLines(pass.Fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				mu, ok := directives[pass.Fset.Position(field.Pos()).Line]
				if !ok {
					continue
				}
				if mu == "" {
					pass.Reportf(field.Pos(), "guardedby directive missing a mutex name (//lint:guardedby mu)")
					continue
				}
				muField := findField(st, mu)
				if muField == nil {
					pass.Reportf(field.Pos(), "guardedby names %s, which is not a field of this struct", mu)
					continue
				}
				if !isSyncMutex(pass.Info.Types[muField.Type].Type) {
					pass.Reportf(field.Pos(), "guardedby names %s, which is not a sync.Mutex or sync.RWMutex", mu)
					continue
				}
				for _, name := range field.Names {
					obj, ok := pass.Info.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					if isAtomicType(obj.Type()) {
						pass.Reportf(name.Pos(), "guardedby on sync/atomic field %s mixes atomic and mutex discipline; drop the annotation or make the field plain", name.Name)
						continue
					}
					guards[obj] = guardSpec{field: obj, mu: mu}
				}
			}
			return true
		})
	}
	return guards
}

// guardedByLines maps each line carrying a guardedby directive (and the line
// after it, for the annotation-above-the-field form) to the mutex name.
func guardedByLines(fset *token.FileSet, file *ast.File) map[int]string {
	out := map[int]string{}
	for _, group := range file.Comments {
		for _, c := range group.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, guardedByDirective) {
				continue
			}
			mu := strings.TrimSpace(strings.TrimPrefix(text, guardedByDirective))
			if i := strings.IndexAny(mu, " \t"); i >= 0 {
				mu = mu[:i]
			}
			line := fset.Position(c.Pos()).Line
			out[line] = mu
			out[line+1] = mu
		}
	}
	return out
}

func findField(st *ast.StructType, name string) *ast.Field {
	for _, f := range st.Fields.List {
		for _, n := range f.Names {
			if n.Name == name {
				return f
			}
		}
	}
	return nil
}

// isSyncMutex reports whether t is sync.Mutex or sync.RWMutex.
func isSyncMutex(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// isAtomicType reports whether t names a sync/atomic type.
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// A lockEvent is one position-ordered occurrence inside a basic block: a
// lock-state change or a guarded access to check.
type lockEvent struct {
	pos token.Pos

	// lock-state change (lockKey != "")
	lockKey string
	acquire int // lockRead/lockWrite bits acquired, 0 for release
	release bool

	// guarded access (access != nil)
	access  *ast.SelectorExpr
	guard   guardSpec
	needKey string // "<base>.<mu>" that must be held
	write   bool
}

// checkLockDiscipline runs the forward lock-state analysis over fn's CFG and
// reports guarded accesses on under-locked paths.
func checkLockDiscipline(pass *Pass, fn *ast.FuncDecl, guards map[types.Object]guardSpec, allowed map[int]bool) {
	// Fast path: skip functions that never touch a guarded field.
	touches := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if obj := pass.Info.ObjectOf(sel.Sel); obj != nil {
				if _, ok := guards[obj]; ok {
					touches = true
				}
			}
		}
		return !touches
	})
	if !touches {
		return
	}

	cfg := buildCFG(fn.Body)
	if cfg.Unanalyzable {
		return
	}
	events := make([][]lockEvent, len(cfg.Blocks))
	for _, blk := range cfg.Blocks {
		for _, node := range blk.Nodes {
			events[blk.Index] = append(events[blk.Index], blockEvents(pass, node, guards)...)
		}
		sort.SliceStable(events[blk.Index], func(i, j int) bool {
			return events[blk.Index][i].pos < events[blk.Index][j].pos
		})
	}

	// Forward must-analysis: in-state is the intersection (bitwise AND per
	// key) of predecessor out-states; unvisited predecessors are optimistic
	// TOP and ignored until computed.
	preds := make([][]*Block, len(cfg.Blocks))
	for _, blk := range cfg.Blocks {
		for _, s := range blk.Succs {
			preds[s.Index] = append(preds[s.Index], blk)
		}
	}
	out := make([]map[string]int, len(cfg.Blocks))
	apply := func(state map[string]int, evs []lockEvent, report bool) map[string]int {
		for _, ev := range evs {
			if ev.lockKey != "" {
				if ev.release {
					delete(state, ev.lockKey)
				} else {
					state[ev.lockKey] |= ev.acquire
				}
				continue
			}
			if !report {
				continue
			}
			line := pass.Fset.Position(ev.pos).Line
			if allowed[line] {
				continue
			}
			held := state[ev.needKey]
			if ev.write && held&lockWrite == 0 {
				pass.Reportf(ev.pos, "write to %s (guarded by %s) without holding %s.Lock", ev.guard.field.Name(), ev.guard.mu, ev.needKey)
			} else if !ev.write && held == 0 {
				pass.Reportf(ev.pos, "read of %s (guarded by %s) without holding %s", ev.guard.field.Name(), ev.guard.mu, ev.needKey)
			}
		}
		return state
	}

	worklist := []*Block{cfg.Entry}
	inState := func(blk *Block) map[string]int {
		if blk == cfg.Entry {
			return map[string]int{}
		}
		var state map[string]int
		for _, p := range preds[blk.Index] {
			po := out[p.Index]
			if po == nil {
				continue // unvisited predecessor: TOP, ignore
			}
			if state == nil {
				state = map[string]int{}
				for k, v := range po {
					state[k] = v
				}
				continue
			}
			for k, v := range state {
				if nv := po[k] & v; nv == 0 {
					delete(state, k)
				} else {
					state[k] = nv
				}
			}
		}
		if state == nil {
			state = map[string]int{}
		}
		return state
	}
	for len(worklist) > 0 {
		blk := worklist[0]
		worklist = worklist[1:]
		next := apply(inState(blk), events[blk.Index], false)
		if stateEqual(out[blk.Index], next) {
			continue
		}
		out[blk.Index] = next
		worklist = append(worklist, blk.Succs...)
	}
	// States are stable; one reporting pass per block.
	for _, blk := range cfg.Blocks {
		if blk != cfg.Entry && out[blk.Index] == nil && len(preds[blk.Index]) > 0 {
			continue // never reached during fixpoint (unreachable)
		}
		apply(inState(blk), events[blk.Index], true)
	}
}

func stateEqual(a, b map[string]int) bool {
	if a == nil {
		return false
	}
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// blockEvents extracts the lock operations and guarded accesses from one CFG
// node, skipping nested function literals (closures run at an unknown time;
// analyzing them under the creating function's lock state would be unsound
// in both directions).
func blockEvents(pass *Pass, node ast.Node, guards map[types.Object]guardSpec) []lockEvent {
	var events []lockEvent

	// Writes: guarded selectors reached from assignment LHSes, inc/dec,
	// delete's map argument, and address-taken expressions.
	writes := map[*ast.SelectorExpr]bool{}
	var markWrite func(e ast.Expr)
	markWrite = func(e ast.Expr) {
		switch e := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			if obj := pass.Info.ObjectOf(e.Sel); obj != nil {
				if _, ok := guards[obj]; ok {
					writes[e] = true
				}
			}
			markWrite(e.X)
		case *ast.IndexExpr:
			markWrite(e.X)
		case *ast.StarExpr:
			markWrite(e.X)
		}
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				markWrite(lhs)
			}
		case *ast.IncDecStmt:
			markWrite(n.X)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				markWrite(n.X)
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := pass.Info.ObjectOf(id).(*types.Builtin); ok && b.Name() == "delete" && len(n.Args) > 0 {
					markWrite(n.Args[0])
				}
			}
		}
		return true
	})

	inDefer := map[ast.Node]bool{}
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			inDefer[n.Call] = true
		case *ast.CallExpr:
			if ev, ok := lockOp(n); ok && !inDefer[n] {
				events = append(events, ev)
				return true
			}
		case *ast.SelectorExpr:
			obj := pass.Info.ObjectOf(n.Sel)
			if obj == nil {
				return true
			}
			g, ok := guards[obj]
			if !ok {
				return true
			}
			events = append(events, lockEvent{
				pos:     n.Sel.Pos(),
				access:  n,
				guard:   g,
				needKey: types.ExprString(n.X) + "." + g.mu,
				write:   writes[n],
			})
		}
		return true
	})
	return events
}

// lockOp recognizes base.mu.Lock()/RLock()/Unlock()/RUnlock() and renders
// the lock key "base.mu".
func lockOp(call *ast.CallExpr) (lockEvent, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	ev := lockEvent{pos: call.Pos(), lockKey: types.ExprString(sel.X)}
	switch sel.Sel.Name {
	case "Lock":
		ev.acquire = lockRead | lockWrite
	case "RLock":
		ev.acquire = lockRead
	case "Unlock", "RUnlock":
		ev.release = true
	default:
		return lockEvent{}, false
	}
	return ev, true
}
