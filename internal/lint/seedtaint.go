package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// SeedTaint generalizes rngdiscipline/nodeterminism from syntactic patterns
// to provenance: every value flowing into a stats.RNG seed — NewRNG's
// argument or (*RNG).Seed's argument — must be data-flow clean, i.e. derive
// only from constants, Config.Seed-style field reads, function parameters
// (checked at every call site via interprocedural seed-sink summaries),
// repo seed-derivation helpers over clean inputs, and values drawn from an
// existing stats.RNG (the Split idiom). Wall-clock reads, process
// environment, global math/rand, package-level mutable state, map iteration
// order, and channel receive order are all tainted, directly or through any
// chain of local assignments and repo-function calls.
var SeedTaint = &Analyzer{
	Name: "seedtaint",
	Doc: "require stats.RNG seeds to derive only from Config.Seed-style values; " +
		"wall-clock, global-state, and iteration-order flows into a seed are errors " +
		"(suppress with //lint:seedtaint-ok)",
	Run: runSeedTaint,
}

const seedTaintOkDirective = "lint:seedtaint-ok"

type seedFinding struct {
	pkg *Package
	pos token.Pos
	msg string
}

func runSeedTaint(pass *Pass) error {
	findings := pass.Prog.data("seedtaint", func() any {
		return seedTaintFindings(pass.Prog)
	}).([]seedFinding)
	for _, f := range findings {
		if f.pkg.Types == pass.Pkg {
			pass.Reportf(f.pos, "%s", f.msg)
		}
	}
	return nil
}

// A seedSink is one expression that ends up as an RNG seed: directly (the
// argument of NewRNG/Seed) or indirectly (an argument to a function whose
// matching parameter flows into a seed).
type seedSink struct {
	fi   *FuncInfo
	expr ast.Expr
	via  string // "" for direct sinks, else the callee the taint flows through
}

func seedTaintFindings(prog *Program) []seedFinding {
	te := newTaintEval(prog)

	// sinkParams[funcKey] is the set of parameter indices that flow into an
	// RNG seed somewhere below the function. It grows to a fixpoint: a direct
	// sink argument tracing to a parameter marks it; an argument to a marked
	// parameter position tracing to a parameter of the caller marks that one.
	sinkParams := map[string]map[int]bool{}
	keys := make([]string, 0, len(prog.funcs))
	for key := range prog.funcs {
		keys = append(keys, key)
	}
	sort.Strings(keys)

	for changed := true; changed; {
		changed = false
		for _, key := range keys {
			fi := prog.funcs[key]
			idx := paramIndex(fi)
			for _, sink := range collectSinks(prog, fi, sinkParams) {
				params := map[*types.Var]bool{}
				te.eval(fi, sink.expr, params)
				for v := range params {
					i, ok := idx[v]
					if !ok {
						continue
					}
					if sinkParams[key] == nil {
						sinkParams[key] = map[int]bool{}
					}
					if !sinkParams[key][i] {
						sinkParams[key][i] = true
						changed = true
					}
				}
			}
		}
	}

	var findings []seedFinding
	for _, key := range keys {
		fi := prog.funcs[key]
		allowed := directiveLines(fi.Pkg.Fset, fi.File, seedTaintOkDirective)
		for _, sink := range collectSinks(prog, fi, sinkParams) {
			if allowed[fi.Pkg.Fset.Position(sink.expr.Pos()).Line] {
				continue
			}
			verdict := te.eval(fi, sink.expr, nil)
			if !verdict.tainted {
				continue
			}
			msg := "RNG seed derives from " + verdict.reason
			if sink.via != "" {
				msg = "value passed to " + sink.via + " flows into an RNG seed and derives from " + verdict.reason
			}
			findings = append(findings, seedFinding{
				pkg: fi.Pkg,
				pos: sink.expr.Pos(),
				msg: msg + "; seeds must derive from Config.Seed (or mark //lint:seedtaint-ok)",
			})
		}
	}
	return findings
}

// collectSinks gathers every seed-sink expression in fi: arguments of
// NewRNG/(*RNG).Seed calls, plus arguments at seed-sink parameter positions
// of program functions (per the current sinkParams summaries).
func collectSinks(prog *Program, fi *FuncInfo, sinkParams map[string]map[int]bool) []seedSink {
	info := fi.Pkg.Info
	var out []seedSink
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		if isRNGSeedCall(info, call) {
			out = append(out, seedSink{fi: fi, expr: call.Args[0]})
			return true
		}
		for _, target := range prog.Callees(fi.Pkg, call) {
			for i := range sinkParams[target.Key] {
				if i < len(call.Args) && !call.Ellipsis.IsValid() {
					out = append(out, seedSink{fi: fi, expr: call.Args[i], via: target.Name()})
				}
			}
		}
		return true
	})
	return out
}

// isRNGSeedCall recognizes stats.NewRNG(seed) and rng.Seed(seed) for
// rng of type stats.RNG, from either the source-checked or export-data view
// of internal/stats.
func isRNGSeedCall(info *types.Info, call *ast.CallExpr) bool {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			return sel.Sel.Name == "Seed" && s.Recv() != nil && isStatsRNG(s.Recv())
		}
	}
	obj := calleeObjectInfo(info, call)
	return obj != nil && obj.Name() == "NewRNG" && obj.Pkg() != nil &&
		strings.Contains(obj.Pkg().Path(), "internal/stats")
}

// paramIndex maps fi's declared parameter objects to their positions.
func paramIndex(fi *FuncInfo) map[*types.Var]int {
	out := map[*types.Var]int{}
	if fi.Decl.Type.Params == nil {
		return out
	}
	i := 0
	for _, f := range fi.Decl.Type.Params.List {
		for _, name := range f.Names {
			if v, ok := fi.Pkg.Info.Defs[name].(*types.Var); ok {
				out[v] = i
			}
			i++
		}
		if len(f.Names) == 0 {
			i++
		}
	}
	return out
}
