package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// A Package is one typechecked target package ready for analysis.
type Package struct {
	Path  string // import path the package was checked under
	Name  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors holds soft typechecking errors. Analysis proceeds anyway —
	// partially typed packages still surface most findings — but the
	// multichecker reports them so a broken tree is never silently "clean".
	TypeErrors []error
}

// listedPackage is the subset of `go list -json` output the loader consumes.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Ignored    bool `json:"-"`
}

// Load enumerates the packages matching patterns (as the go command
// understands them, e.g. "./..."), relative to dir, parses their non-test Go
// files, and typechecks them against compiler export data. Test files are
// excluded by design: the analyzers enforce production-code invariants, and
// several (floateq, errcheck) deliberately exempt tests.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := newExportDataImporter(dir, fset)
	var pkgs []*Package
	for _, lp := range listed {
		if len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := checkPackage(fset, imp, lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// goList runs `go list -json` and decodes the JSON stream.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	return decodeGoList(&stdout)
}

// decodeGoList decodes the concatenated-JSON-objects stream `go list -json`
// emits (one object per package, no array wrapper). Split out of goList so
// malformed-output handling is testable without a go toolchain subprocess.
func decodeGoList(r io.Reader) ([]listedPackage, error) {
	dec := json.NewDecoder(r)
	var out []listedPackage
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		out = append(out, lp)
	}
	return out, nil
}

// CheckDir parses and typechecks a single directory of Go files as the
// package path pkgPath. It is the entry point the fixture test harness uses:
// fixture directories live under testdata (invisible to the go tool) and are
// checked under a caller-chosen path so path-scoped analyzers can be
// exercised.
func CheckDir(dir, pkgPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	fset := token.NewFileSet()
	imp := newExportDataImporter(dir, fset)
	return checkPackage(fset, imp, pkgPath, dir, files)
}

// checkPackage parses and typechecks one package's files.
func checkPackage(fset *token.FileSet, imp types.Importer, pkgPath, dir string, fileNames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %v", filepath.Join(dir, name), err)
		}
		files = append(files, f)
	}
	pkg := &Package{
		Path:  pkgPath,
		Dir:   dir,
		Fset:  fset,
		Files: files,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		},
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(pkgPath, fset, files, pkg.Info)
	pkg.Types = tpkg
	if pkg.Name = tpkg.Name(); pkg.Name == "" && len(files) > 0 {
		pkg.Name = files[0].Name.Name
	}
	return pkg, nil
}

// exportDataImporter resolves imports from the compiler's export data,
// located by asking the go command (`go list -export`). The go build cache
// already holds export data for everything the module builds, so resolution
// is fast and needs no network. Results are cached per import path.
type exportDataImporter struct {
	dir string
	gc  types.ImporterFrom

	mu      sync.Mutex
	exports map[string]string // import path -> export data file
}

func newExportDataImporter(dir string, fset *token.FileSet) types.Importer {
	imp := &exportDataImporter{dir: dir, exports: map[string]string{}}
	imp.gc = importer.ForCompiler(fset, "gc", imp.lookup).(types.ImporterFrom)
	return imp
}

func (imp *exportDataImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return imp.gc.ImportFrom(path, imp.dir, 0)
}

// lookup opens the export data for one import path, resolving it through the
// go command on first use.
func (imp *exportDataImporter) lookup(path string) (io.ReadCloser, error) {
	imp.mu.Lock()
	file, ok := imp.exports[path]
	imp.mu.Unlock()
	if !ok {
		cmd := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path)
		cmd.Dir = imp.dir
		var stdout, stderr bytes.Buffer
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			return nil, fmt.Errorf("lint: locating export data for %q: %v\n%s", path, err, stderr.String())
		}
		file = strings.TrimSpace(stdout.String())
		if file == "" {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		imp.mu.Lock()
		imp.exports[path] = file
		imp.mu.Unlock()
	}
	return os.Open(file)
}
