// Package linttest is the project's analysistest analogue: it runs one
// analyzer over a fixture directory and checks the diagnostics against
// expectations written in the fixture source as trailing comments:
//
//	rand.Seed(1) // want `global math/rand`
//
// The backquoted string is an anchored-nowhere regular expression that must
// match a diagnostic reported on that line; every diagnostic must be matched
// by a want and every want must match a diagnostic, or the test fails with
// one line per discrepancy. A want comment may carry several patterns
// (space-separated, each in its own backquotes) for lines that produce
// several diagnostics, e.g. a tuple assignment appending to two slices.
//
// A trailing "// want:none" marks a line that looks like a violation but must
// stay silent — a negative case made load-bearing. Any unmatched diagnostic
// already fails the test; want:none upgrades the failure to name the clean
// pattern being protected, and documents in the fixture itself that the
// silence is deliberate rather than an oversight.
package linttest

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"lcsf/internal/lint"
)

// wantRE locates a "// want" comment; wantPatternRE then extracts each
// backquoted or double-quoted pattern from its remainder.
var (
	wantRE        = regexp.MustCompile("//\\s*want\\s+((`[^`]*`|\"[^\"]*\")(\\s+(`[^`]*`|\"[^\"]*\"))*)")
	wantPatternRE = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")
	wantNoneRE    = regexp.MustCompile(`//\s*want:none\b`)
)

// Run typechecks the fixture directory dir under the import path pkgPath and
// applies the analyzer, comparing diagnostics to // want comments. pkgPath
// matters: path-scoped analyzers (nodeterminism, nilsafeobs) only fire when
// it lands in their scope.
func Run(t *testing.T, a *lint.Analyzer, dir, pkgPath string) {
	t.Helper()
	pkg, err := lint.CheckDir(dir, pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture %s has type errors: %v", dir, terr)
	}
	diags, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	type want struct {
		file    string
		line    int
		pattern *regexp.Regexp
		matched bool
	}
	var wants []*want
	type noneKey struct {
		file string
		line int
	}
	nones := map[noneKey]bool{}
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				if wantNoneRE.MatchString(c.Text) {
					pos := pkg.Fset.Position(c.Pos())
					nones[noneKey{pos.Filename, pos.Line}] = true
					continue
				}
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				for _, pm := range wantPatternRE.FindAllStringSubmatch(m[1], -1) {
					pattern := pm[1]
					if pattern == "" {
						pattern = pm[2]
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("bad want pattern %q: %v", pattern, err)
					}
					pos := pkg.Fset.Position(c.Pos())
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}

	for _, d := range diags {
		if nones[noneKey{d.Pos.Filename, d.Pos.Line}] {
			t.Errorf("diagnostic on a // want:none line (this pattern must stay clean):\n  %s", d)
			continue
		}
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("no diagnostic at %s matching %q", fmt.Sprintf("%s:%d", shortPath(w.file), w.line), w.pattern)
		}
	}
}

func shortPath(p string) string {
	if i := strings.LastIndex(p, "testdata/"); i >= 0 {
		return p[i:]
	}
	return p
}
