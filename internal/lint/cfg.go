package lint

import (
	"go/ast"
	"go/token"
)

// This file builds per-function control-flow graphs from syntax alone. The
// graphs are deliberately simple — basic blocks of statements/expressions in
// evaluation order, linked by successor edges — which is all the forward
// dataflow analyses in this package (locksafe's lock-state lattice) need.
// Functions using goto are marked Unanalyzable and analyzers skip them
// rather than risk unsound edges; the repo contains none.

// A Block is one straight-line run of statements and the control expressions
// evaluated with them. Nodes appear in evaluation order.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

// A CFG is the control-flow graph of one function body. Entry is the block
// control enters first; Blocks lists every block (including unreachable ones
// created after return/break, which simply have no predecessors).
type CFG struct {
	Entry  *Block
	Blocks []*Block
	// Unanalyzable marks functions whose control flow the builder does not
	// model (goto, or break/continue to a non-loop label). Flow-sensitive
	// analyzers must skip such functions instead of trusting the graph.
	Unanalyzable bool
}

// buildCFG constructs the control-flow graph of a function body.
func buildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}}
	b.cur = b.newBlock()
	b.cfg.Entry = b.cur
	b.stmts(body.List)
	return b.cfg
}

// breakFrame and contFrame are the jump targets of the enclosing breakable
// (loop/switch/select) and continuable (loop) statements, innermost last.
type breakFrame struct {
	label string
	exit  *Block
}

type contFrame struct {
	label  string
	target *Block
}

type cfgBuilder struct {
	cfg        *CFG
	cur        *Block // nil when the current path has terminated
	breaks     []breakFrame
	continues  []contFrame
	fallTarget *Block // next case block while building a switch case body
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func link(from, to *Block) {
	if from == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

// add appends a node to the current block, starting a fresh (unreachable)
// block when the previous path terminated — dead code still gets analyzed,
// it just has no predecessors.
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)

	case *ast.LabeledStmt:
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		b.add(s.Cond)
		cond := b.cur
		exit := b.newBlock()
		then := b.newBlock()
		link(cond, then)
		b.cur = then
		b.stmts(s.Body.List)
		link(b.cur, exit)
		if s.Else != nil {
			els := b.newBlock()
			link(cond, els)
			b.cur = els
			b.stmt(s.Else, "")
			link(b.cur, exit)
		} else {
			link(cond, exit)
		}
		b.cur = exit

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		head := b.newBlock()
		link(b.cur, head)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
		}
		exit := b.newBlock()
		if s.Cond != nil {
			link(head, exit)
		}
		contTarget := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			contTarget = post
		}
		body := b.newBlock()
		link(head, body)
		b.breaks = append(b.breaks, breakFrame{label, exit})
		b.continues = append(b.continues, contFrame{label, contTarget})
		b.cur = body
		b.stmts(s.Body.List)
		link(b.cur, contTarget)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		if post != nil {
			b.cur = post
			b.add(s.Post)
			link(b.cur, head)
		}
		b.cur = exit

	case *ast.RangeStmt:
		head := b.newBlock()
		link(b.cur, head)
		b.cur = head
		b.add(s.X)
		exit := b.newBlock()
		link(head, exit)
		body := b.newBlock()
		link(head, body)
		b.breaks = append(b.breaks, breakFrame{label, exit})
		b.continues = append(b.continues, contFrame{label, head})
		b.cur = body
		b.stmts(s.Body.List)
		link(b.cur, head)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.cur = exit

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var init ast.Stmt
		var tag ast.Node
		var clauses []ast.Stmt
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			init, tag, clauses = sw.Init, sw.Tag, sw.Body.List
		case *ast.TypeSwitchStmt:
			init, tag, clauses = sw.Init, sw.Assign, sw.Body.List
		}
		if init != nil {
			b.stmt(init, "")
		}
		if tag != nil {
			b.add(tag)
		}
		head := b.cur
		exit := b.newBlock()
		caseBlocks := make([]*Block, len(clauses))
		hasDefault := false
		for i, cc := range clauses {
			caseBlocks[i] = b.newBlock()
			link(head, caseBlocks[i])
			if cc.(*ast.CaseClause).List == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			link(head, exit)
		}
		b.breaks = append(b.breaks, breakFrame{label, exit})
		for i, cc := range clauses {
			clause := cc.(*ast.CaseClause)
			b.cur = caseBlocks[i]
			for _, e := range clause.List {
				b.add(e)
			}
			savedFall := b.fallTarget
			if i+1 < len(caseBlocks) {
				b.fallTarget = caseBlocks[i+1]
			} else {
				b.fallTarget = exit
			}
			b.stmts(clause.Body)
			b.fallTarget = savedFall
			link(b.cur, exit)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.cur = exit

	case *ast.SelectStmt:
		head := b.cur
		if head == nil {
			head = b.newBlock()
			b.cur = head
		}
		exit := b.newBlock()
		b.breaks = append(b.breaks, breakFrame{label, exit})
		for _, cc := range s.Body.List {
			clause := cc.(*ast.CommClause)
			blk := b.newBlock()
			link(head, blk)
			b.cur = blk
			if clause.Comm != nil {
				b.stmt(clause.Comm, "")
			}
			b.stmts(clause.Body)
			link(b.cur, exit)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.cur = exit

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if f := b.findBreak(s.Label); f != nil {
				link(b.cur, f.exit)
			} else {
				b.cfg.Unanalyzable = true
			}
			b.cur = nil
		case token.CONTINUE:
			if f := b.findContinue(s.Label); f != nil {
				link(b.cur, f.target)
			} else {
				b.cfg.Unanalyzable = true
			}
			b.cur = nil
		case token.FALLTHROUGH:
			link(b.cur, b.fallTarget)
			b.cur = nil
		case token.GOTO:
			b.cfg.Unanalyzable = true
			b.cur = nil
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.cur = nil

	default:
		// Assignments, declarations, expression statements, defer, go, send,
		// inc/dec: straight-line nodes.
		b.add(s)
	}
}

func (b *cfgBuilder) findBreak(label *ast.Ident) *breakFrame {
	for i := len(b.breaks) - 1; i >= 0; i-- {
		if label == nil || b.breaks[i].label == label.Name {
			return &b.breaks[i]
		}
	}
	return nil
}

func (b *cfgBuilder) findContinue(label *ast.Ident) *contFrame {
	for i := len(b.continues) - 1; i >= 0; i-- {
		if label == nil || b.continues[i].label == label.Name {
			return &b.continues[i]
		}
	}
	return nil
}
