package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// RNGDiscipline enforces the project's one-stream-per-goroutine rule:
// a stats.RNG captured by a `go func(){...}` closure must belong to that
// goroutine alone. Two patterns are flagged:
//
//   - the same RNG variable is captured by a goroutine closure launched
//     inside a loop (every iteration's goroutine shares one stream);
//   - the same RNG variable is captured by two or more distinct goroutine
//     closures.
//
// Shared streams are both a data race and a determinism hazard: draw
// interleaving depends on scheduling, so results stop being reproducible in
// the seed. The fix is explicit per-shard derivation — rng.Split(), or
// stats.NewRNG with a seed derived from the shard identity (see
// core.pairSeed).
var RNGDiscipline = &Analyzer{
	Name: "rngdiscipline",
	Doc: "forbid capturing one stats.RNG in multiple goroutine-spawning closures; " +
		"derive per-goroutine streams with Split or seeded NewRNG",
	Run: runRNGDiscipline,
}

func runRNGDiscipline(pass *Pass) error {
	// captures[obj] records each goroutine closure capturing an RNG object,
	// keyed in first-seen order for stable reporting.
	type capture struct {
		lit    *ast.FuncLit
		inLoop bool // the go statement sits in a loop enclosing obj's scope
		use    *ast.Ident
	}
	captures := map[types.Object][]capture{}
	var order []types.Object

	for _, file := range pass.Files {
		// loops collects for/range statements so goroutine launch sites can
		// be tested for loop enclosure by position.
		var loops []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				loops = append(loops, n)
			}
			return true
		})
		ast.Inspect(file, func(n ast.Node) bool {
			goStmt, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := ast.Unparen(goStmt.Call.Fun).(*ast.FuncLit)
			if !ok {
				return true
			}
			for obj, use := range freeRNGs(pass, lit) {
				inLoop := false
				for _, loop := range loops {
					// The goroutine is launched once per iteration of loop,
					// but obj lives outside it: every iteration shares obj.
					if loop.Pos() <= goStmt.Pos() && goStmt.End() <= loop.End() &&
						!(loop.Pos() <= obj.Pos() && obj.Pos() <= loop.End()) {
						inLoop = true
						break
					}
				}
				if _, seen := captures[obj]; !seen {
					order = append(order, obj)
				}
				captures[obj] = append(captures[obj], capture{lit: lit, inLoop: inLoop, use: use})
			}
			return true
		})
	}

	for _, obj := range order {
		caps := captures[obj]
		for _, c := range caps {
			if c.inLoop {
				pass.Reportf(c.use.Pos(), "RNG %s is captured by a goroutine launched in a loop; every iteration shares one stream — derive a per-goroutine stream with %s.Split() or a seeded stats.NewRNG", obj.Name(), obj.Name())
			} else if len(caps) > 1 {
				pass.Reportf(c.use.Pos(), "RNG %s is captured by %d goroutine-spawning closures; each goroutine needs its own stream — use %s.Split() or a seeded stats.NewRNG per goroutine", obj.Name(), len(caps), obj.Name())
			}
		}
	}
	return nil
}

// freeRNGs returns the stats.RNG-typed variables used inside lit but
// declared outside it, with one representative use site each.
func freeRNGs(pass *Pass, lit *ast.FuncLit) map[types.Object]*ast.Ident {
	out := map[types.Object]*ast.Ident{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil || !isStatsRNG(obj.Type()) {
			return true
		}
		// Declared inside the literal (parameter or local) means not free.
		if lit.Pos() <= obj.Pos() && obj.Pos() <= lit.End() {
			return true
		}
		if _, seen := out[obj]; !seen {
			out[obj] = id
		}
		return true
	})
	return out
}

// isStatsRNG reports whether t is stats.RNG or *stats.RNG, matching the named
// type RNG declared in a package whose path contains "internal/stats".
func isStatsRNG(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "RNG" && obj.Pkg() != nil && strings.Contains(obj.Pkg().Path(), "internal/stats")
}
