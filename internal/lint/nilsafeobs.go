package lint

import (
	"go/ast"
	"go/token"
)

// NilSafeObsScope marks the packages whose Collector must stay nil-safe.
// Tests may override (nil means every package is in scope).
var NilSafeObsScope = []string{"internal/obs"}

// NilSafeObs enforces the observability layer's core contract: every exported
// method on *obs.Collector is a no-op on a nil receiver, so instrumented code
// can thread an optional collector with zero guards at call sites. A method
// satisfies the check when its body begins with a nil-receiver guard:
//
//   - `if c == nil { return ... }` as the first statement, or
//   - the entire body wrapped in `if c != nil { ... }`, or
//   - pure delegation: a single statement calling another method on the
//     same receiver (nil-safe by induction, e.g. Inc calling c.Count).
var NilSafeObs = &Analyzer{
	Name: "nilsafeobs",
	Doc: "require every exported *obs.Collector method to begin with a " +
		"nil-receiver guard (or delegate to a guarded method)",
	Run: runNilSafeObs,
}

func runNilSafeObs(pass *Pass) error {
	if !pathInScope(pass.Pkg.Path(), NilSafeObsScope) {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			recv := collectorReceiver(fn)
			if recv == "" {
				continue
			}
			if !nilGuarded(fn.Body, recv) {
				pass.Reportf(fn.Name.Pos(), "exported method (*Collector).%s must begin with a nil-receiver guard (if %s == nil { ... } / if %s != nil { ... }) or delegate to a guarded method", fn.Name.Name, recv, recv)
			}
		}
	}
	return nil
}

// collectorReceiver returns fn's receiver name when fn is a pointer-receiver
// method on a type named Collector, else "".
func collectorReceiver(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return ""
	}
	field := fn.Recv.List[0]
	star, ok := field.Type.(*ast.StarExpr)
	if !ok {
		return ""
	}
	id, ok := star.X.(*ast.Ident)
	if !ok || id.Name != "Collector" {
		return ""
	}
	if len(field.Names) == 0 {
		return "" // anonymous receiver can never be guarded
	}
	return field.Names[0].Name
}

// nilGuarded reports whether body begins with an accepted nil-receiver
// guard for receiver recv.
func nilGuarded(body *ast.BlockStmt, recv string) bool {
	if recv == "_" || len(body.List) == 0 {
		return false
	}
	switch first := body.List[0].(type) {
	case *ast.IfStmt:
		if op, lhs := guardShape(first.Cond, recv); op == token.EQL && lhs {
			// `if c == nil { return ... }` — the branch must terminate.
			if n := len(first.Body.List); n > 0 {
				if _, ok := first.Body.List[n-1].(*ast.ReturnStmt); ok {
					return true
				}
			}
			return false
		} else if op == token.NEQ && lhs && len(body.List) == 1 && first.Else == nil {
			// whole body inside `if c != nil { ... }`
			return true
		}
	case *ast.ExprStmt:
		if len(body.List) == 1 {
			return delegatesToReceiver(first.X, recv)
		}
	case *ast.ReturnStmt:
		if len(body.List) == 1 && len(first.Results) == 1 {
			return delegatesToReceiver(first.Results[0], recv)
		}
	}
	return false
}

// guardShape decomposes `recv == nil` / `recv != nil` (either operand
// order); lhs reports whether the comparison involves recv and nil at all.
func guardShape(cond ast.Expr, recv string) (token.Token, bool) {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return token.ILLEGAL, false
	}
	isRecv := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == recv
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	if (isRecv(bin.X) && isNil(bin.Y)) || (isNil(bin.X) && isRecv(bin.Y)) {
		return bin.Op, true
	}
	return token.ILLEGAL, false
}

// delegatesToReceiver reports whether e is a call of the form recv.Method(...).
func delegatesToReceiver(e ast.Expr, recv string) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == recv
}
