// Fixture: nil-safe Collector methods the analyzer must accept.
package fixture

// GuardReturn uses the early-return guard form.
func (c *Collector) GuardReturn(n int64) {
	if c == nil {
		return
	}
	c.n += n
}

// GuardWrap wraps the whole body in the non-nil branch.
func (c *Collector) GuardWrap(n int64) {
	if c != nil {
		c.n += n
	}
}

// GuardValue returns a zero value for a nil receiver.
func (c *Collector) GuardValue() int64 {
	if c == nil {
		return 0
	}
	return c.n
}

// Inc delegates to a guarded method — nil-safe by induction (the obs.Inc
// pattern).
func (c *Collector) Inc() { c.GuardReturn(1) }

// Total delegates through a return statement.
func (c *Collector) Total() int64 { return c.GuardValue() }

// unexported methods are internal plumbing, out of contract.
func (c *Collector) snapshot() int64 { return c.n }

// Gauge is not the Collector; other types carry no nil-safety contract.
type Gauge struct{ v float64 }

// Set may assume a non-nil receiver.
func (g *Gauge) Set(v float64) { g.v = v }
