// Fixture: Collector methods missing a nil-receiver guard. Checked under a
// package path inside internal/obs, so the Collector contract applies.
package fixture

// Collector mirrors the shape of obs.Collector.
type Collector struct {
	n int64
}

// Unguarded dereferences the receiver immediately.
func (c *Collector) Unguarded(n int64) { // want `must begin with a nil-receiver guard`
	c.n += n
}

// GuardTooLate crashes before its guard runs.
func (c *Collector) GuardTooLate(n int64) { // want `must begin with a nil-receiver guard`
	c.n += n
	if c == nil {
		return
	}
}

// GuardNoReturn tests nil but falls through to the dereference anyway.
func (c *Collector) GuardNoReturn(n int64) { // want `must begin with a nil-receiver guard`
	if c == nil {
		n++
	}
	c.n += n
}

// WrongDelegate calls a function, not a method on the receiver.
func (c *Collector) WrongDelegate(n int64) { // want `must begin with a nil-receiver guard`
	add(c, n)
}

func add(c *Collector, n int64) { c.n += n }
