// Fixture: the freeze-then-read pattern behind the audit's frozen null
// cache. A guarded mutable store is snapshotted once, under the proper
// locks, into an immutable flat struct that readers then use lock-free. The
// analyzer must bless the disciplined freeze and the post-freeze reads (the
// snapshot has no guarded fields), and flag a freeze that walks the guarded
// store without holding its lock.
package fixture

import "sync"

type liveStore struct {
	mu sync.RWMutex
	//lint:guardedby mu
	entries map[string][]float64
	keys    []string //lint:guardedby mu
}

// frozenStore is the read-only snapshot: plain fields, no mutex, no
// guardedby annotations. Lock-free reads of it are not lock violations.
type frozenStore struct {
	keys    []string
	samples [][]float64
}

// freeze is the blessed shape: the one-time snapshot walk holds the read
// lock for the entire copy, and nothing retains the guarded containers.
func (s *liveStore) freeze() *frozenStore {
	f := &frozenStore{}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, k := range s.keys { // want:none
		f.keys = append(f.keys, k)
		f.samples = append(f.samples, s.entries[k]) // want:none
	}
	return f
}

// racyFreeze snapshots without any lock: exactly the torn-read freeze the
// discipline exists to prevent.
func (s *liveStore) racyFreeze() *frozenStore {
	f := &frozenStore{}
	for _, k := range s.keys { // want `read of keys`
		f.keys = append(f.keys, k)
		f.samples = append(f.samples, s.entries[k]) // want `read of entries`
	}
	return f
}

// lookup is the post-freeze hot path: pure reads of the unguarded snapshot,
// safe for any number of concurrent readers, and silent under the analyzer.
func (f *frozenStore) lookup(key string) []float64 {
	for i, k := range f.keys { // want:none
		if k == key {
			return f.samples[i] // want:none
		}
	}
	return nil
}
