// Fixture: malformed guardedby annotations locksafe must reject at the
// declaration, plus the atomic-mixing rule.
package fixture

import (
	"sync"
	"sync/atomic"
)

type badAnnotations struct {
	mu    sync.Mutex
	depth int

	//lint:guardedby
	unnamed int // want `missing a mutex name`

	//lint:guardedby gone
	orphan int // want `not a field of this struct`

	//lint:guardedby depth
	notAMutex int // want `not a sync.Mutex or sync.RWMutex`

	//lint:guardedby mu
	mixed atomic.Int64 // want `mixes atomic and mutex discipline`
}
