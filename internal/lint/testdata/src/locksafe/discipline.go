// Fixture: lock-discipline violations and blessed patterns for locksafe.
// The shard struct mirrors the null cache's shape: a map and its mirror
// slice guarded by one RWMutex.
package fixture

import "sync"

type shard struct {
	mu sync.RWMutex
	//lint:guardedby mu
	entries map[string]int
	keys    []string //lint:guardedby mu
}

// unlockedRead touches a guarded field with no lock at all.
func (s *shard) unlockedRead(k string) int {
	return s.entries[k] // want `read of entries .* without holding s.mu`
}

// readLockedWrite holds only the read lock across a mutation.
func (s *shard) readLockedWrite(k string) {
	s.mu.RLock()
	s.entries[k] = 1 // want `write to entries .* without holding s.mu.Lock`
	s.mu.RUnlock()
}

// branchyRead locks on only one path; the meet over predecessors must drop
// the lock, because "held on the path" means held on every path.
func (s *shard) branchyRead(k string, careful bool) int {
	if careful {
		s.mu.RLock()
		defer s.mu.RUnlock()
	}
	return s.entries[k] // want `read of entries`
}

// unlockedDelete mutates through the delete builtin.
func (s *shard) unlockedDelete(k string) {
	delete(s.entries, k) // want `write to entries .* without holding s.mu.Lock`
}

// unlockedAppend grows the mirror slice without the write lock.
func (s *shard) unlockedAppend(k string) {
	s.keys = append(s.keys, k) // want `write to keys` `read of keys`
}

// properWrite is the blessed shape: write lock held, deferred unlock not
// counted as a release at its syntactic position.
func (s *shard) properWrite(k string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries[k] = 1           // want:none
	s.keys = append(s.keys, k) // want:none
}

// properRead holds the read lock for reads.
func (s *shard) properRead(k string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.entries[k] // want:none
}

// bothBranchesLock acquires on every path, so the meet keeps the lock.
func (s *shard) bothBranchesLock(k string, wide bool) int {
	if wide {
		s.mu.Lock()
	} else {
		s.mu.Lock()
	}
	v := s.entries[k] // want:none — locked on every predecessor path
	s.mu.Unlock()
	return v
}

// releasedThenRead must not treat an unlocked region as covered.
func (s *shard) releasedThenRead(k string) int {
	s.mu.RLock()
	v := s.entries[k] // want:none
	s.mu.RUnlock()
	return v + s.entries[k] // want `read of entries`
}

// bumpLocked relies on the caller-holds-the-lock naming contract.
func (s *shard) bumpLocked(k string) {
	s.entries[k]++ // want:none — *Locked functions are exempt by contract
}

// newShard initializes before the value is published; the escape hatch
// records that no other goroutine can hold a reference yet.
func newShard() *shard {
	s := &shard{}
	s.entries = map[string]int{} //lint:locksafe-ok not yet published // want:none
	return s
}
