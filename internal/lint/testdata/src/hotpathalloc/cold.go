// Fixture: allocation outside any //lint:hotpath entry's reach must stay
// silent — the contract binds kernels, not the whole program.
package fixture

func coldAssemble(n int) []float64 {
	out := make([]float64, 0, n) // want:none — not reachable from a hot entry
	for i := 0; i < n; i++ {
		out = append(out, float64(i)) // want:none
	}
	return out
}
