// Fixture: allocation vocabulary inside //lint:hotpath kernels that
// hotpathalloc must catch — directly, transitively through static calls, and
// through interface dispatch resolved by class-hierarchy analysis.
package fixture

import "fmt"

type point struct{ x, y float64 }

//lint:hotpath
func allocZoo(n int, s string, m map[int]int) {
	buf := make([]float64, n) // want `make`
	_ = buf
	p := new(point) // want `new`
	_ = p
	buf = append(buf, 1) // want `append`
	_ = s + "!"          // want `string concatenation`
	b := []byte(s)       // want `string conversion`
	_ = b
	_ = fmt.Sprintf("%d", n) // want `fmt`
	q := &point{1, 2}        // want `address of composite literal`
	_ = q
	xs := []float64{float64(n)} // want `slice/map literal`
	_ = xs
	m[n] = 1     // want `map assignment`
	go spinner() // want `goroutine spawn`
}

func spinner() {}

//lint:hotpath
func closures(n int) int {
	f := func() int { return n } // want `closure capturing`
	g := func() int { return 1 } // want:none — captureless closures are static
	return f() + g()
}

// sink models a prepared-metric style interface parameter.
func sink(v any) {}

//lint:hotpath
func boxer(x int, p *point) {
	sink(x) // want `interface boxing`
	sink(p) // want:none — pointers fit the interface data word
	sink(3) // want:none — constants use the compiler's static boxes
}

// scorer mirrors the PreparedMetric dispatch shape: the kernel calls through
// the interface, and every program implementation joins the contract.
type scorer interface {
	score(a, b float64) float64
}

type fastScorer struct{}

func (fastScorer) score(a, b float64) float64 { return a + b } // want:none — alloc-free implementation

type slowScorer struct{ trace []float64 }

func (s *slowScorer) score(a, b float64) float64 {
	s.trace = append(s.trace, a) // want `append`
	return a + b
}

//lint:hotpath
func dispatchKernel(s scorer, xs []float64) float64 {
	var sum float64
	for i := range xs {
		sum += s.score(xs[i], 1)
	}
	return sum
}

//lint:hotpath
func entry(n int) {
	helperAlloc(n)
	exemptWholeFunc(n)
	coldFallback(n)    //lint:hotpathalloc-ok fallback excluded from the zero-alloc contract
	_ = growScratch(n) //lint:hotpathalloc-ok amortized growth, not per-call // want:none
}

// helperAlloc is reached transitively from entry; its allocation is part of
// the kernel.
func helperAlloc(n int) {
	_ = make([]int, n) // want `make`
}

// coldFallback sits behind a hotpathalloc-ok barrier on its only hot call
// site: nothing below it is scanned.
func coldFallback(n int) {
	_ = make([]int, n) // want:none — behind the call-site barrier
}

//lint:hotpathalloc-ok whole function exempted from the contract
func exemptWholeFunc(n int) {
	_ = make([]int, n) // want:none — declaration-level exemption
}

func growScratch(n int) []float64 {
	return make([]float64, n)
}
