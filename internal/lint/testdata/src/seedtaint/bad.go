// Fixture: seed provenance violations seedtaint must catch — wall-clock and
// environment flows, ambient mutable state, iteration order, and taint
// carried through local bindings, helper results, and seed-sink parameters.
package fixture

import (
	"time"

	"lcsf/internal/stats"
)

var ambient uint64

// directSources feeds nondeterministic values straight into seeds.
func directSources(ch chan uint64, keys map[uint64]bool) {
	_ = stats.NewRNG(uint64(time.Now().UnixNano())) // want `wall clock`
	_ = stats.NewRNG(ambient)                       // want `package-level mutable state`
	_ = stats.NewRNG(<-ch)                          // want `channel receive order`
	for k := range keys {
		_ = stats.NewRNG(k) // want `map iteration order`
	}
}

// throughLocals launders the wall clock through assignments and arithmetic;
// the taint survives the chain.
func throughLocals() {
	t := time.Now().UnixNano()
	mixed := uint64(t) * 0x9E3779B97F4A7C15
	_ = stats.NewRNG(mixed) // want `wall clock`
}

// clockSeed returns a tainted value; the result-taint summary catches the
// call even though the argument list is clean.
func clockSeed() uint64 {
	return uint64(time.Now().UnixNano())
}

func throughHelperResult() {
	_ = stats.NewRNG(clockSeed()) // want `wall clock.*via clockSeed`
}

// reseed's parameter flows into rng.Seed, so every call site of reseed is a
// seed sink: passing the wall clock there is as bad as passing it to NewRNG.
func reseed(rng *stats.RNG, seed uint64) {
	rng.Seed(seed)
}

func throughSinkParam(rng *stats.RNG) {
	reseed(rng, uint64(time.Now().UnixNano())) // want `flows into an RNG seed.*wall clock`
}
