// Fixture: the repo's blessed seed-plumbing idioms, which must stay silent —
// Config.Seed field reads, constant mixing, parameter passing (checked at
// each call site instead), and child streams drawn from a parent RNG.
package fixture

import (
	"time"

	"lcsf/internal/stats"
)

type config struct {
	Seed uint64
}

// fromConfig is the canonical pattern: the audit seed is data, read from a
// field, mixed with constants.
func fromConfig(cfg config) {
	_ = stats.NewRNG(cfg.Seed)                      // want:none — field reads are clean by design
	_ = stats.NewRNG(cfg.Seed ^ 0x9E3779B97F4A7C15) // want:none — constant mixing stays clean
	_ = stats.NewRNG(pairSeed(cfg.Seed, 7, 11))     // want:none — derivation helper over clean inputs
}

// pairSeed mirrors core.pairSeed: a pure mix of its arguments. Its parameter
// becomes a seed sink, so taint is checked where callers supply values.
func pairSeed(seed uint64, i, j int) uint64 {
	h := seed
	h ^= uint64(i) * 0x100000001B3
	h ^= uint64(j) * 0x1000193
	return h
}

// fromParent derives child seeds from an existing disciplined stream — the
// Split idiom.
func fromParent(parent *stats.RNG) {
	_ = stats.NewRNG(parent.Uint64()) // want:none — RNG-derived values are clean
	child := parent.Split()
	child.Seed(parent.Uint64()) // want:none
}

// acknowledged keeps a deliberate wall-clock seed behind the escape hatch
// (a throwaway smoke binary, say).
func acknowledged() {
	_ = stats.NewRNG(uint64(time.Now().UnixNano())) //lint:seedtaint-ok throwaway smoke seed // want:none
}
