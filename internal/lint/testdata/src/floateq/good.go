// Fixture: float handling the floateq analyzer must allow.
package fixture

import "math"

const eps = 1e-9

// within is the sanctioned tolerance comparison.
func within(a, b float64) bool {
	return math.Abs(a-b) <= eps
}

// sentinel is a deliberate exact comparison, acknowledged inline.
func sentinel(p float64) bool {
	return p == 0 //lint:floateq-ok zero sentinel
}

// sentinelAbove is acknowledged by a directive on the preceding line.
func sentinelAbove(p float64) bool {
	//lint:floateq-ok NaN-propagating sentinel
	return p != p
}

// ordered comparisons carry no exactness hazard.
func above(x float64) bool { return x > 1 }

// integer equality is exact by construction.
func ints(a, b int) bool { return a == b }
