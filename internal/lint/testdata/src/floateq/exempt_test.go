// Fixture: test files are exempt from floateq — table tests legitimately pin
// exact expected values. No diagnostics expected anywhere in this file.
package fixture

func exactInTest(a, b float64) bool {
	return a == b
}
