// Fixture: exact float comparisons the floateq analyzer must catch.
package fixture

// equalExact compares float64 values bit-for-bit.
func equalExact(a, b float64) bool {
	return a == b // want `exact floating-point == comparison`
}

// notEqualExact compares float32 values bit-for-bit.
func notEqualExact(a, b float32) bool {
	return a != b // want `exact floating-point != comparison`
}

// constOperand still drifts: p is a runtime value.
func constOperand(p float64) bool {
	return p == 0.5 // want `exact floating-point == comparison`
}

type score float64

// namedFloat catches defined types with a float underlying type.
func namedFloat(a, b score) bool {
	return a == b // want `exact floating-point == comparison`
}
