// Fixture: nondeterministic scenario-generator shapes the analyzer must
// catch. internal/verify's generators and perturbations feed metamorphic
// oracles that assert bit-identical flagged sets, so a generator that seeds
// itself from the environment would make every oracle flaky by construction.
package fixture

import "time"

// clockSeededScenario models the classic mistake: defaulting a scenario
// seed to the wall clock "for variety".
func clockSeededScenario(tracts int) []float64 {
	seed := uint64(time.Now().UnixNano()) // want `wall-clock read time.Now`
	out := make([]float64, tracts)
	for i := range out {
		seed = seed*6364136223846793005 + 1442695040888963407
		out[i] = float64(seed>>11) / (1 << 53)
	}
	return out
}

// timedPerturbation models a perturbation that times itself inline instead
// of going through an injected clock or the observability layer.
func timedPerturbation(obs []float64) ([]float64, time.Duration) {
	start := time.Now() // want `wall-clock read time.Now`
	shuffled := make([]float64, len(obs))
	copy(shuffled, obs)
	return shuffled, time.Since(start) // want `wall-clock read time.Since`
}

// perturbationsFromMap models a scenario builder collecting its perturbation
// set from a registry map: the resulting order — and therefore every
// derived RNG stream — would change run to run.
func perturbationsFromMap(registry map[string]func([]float64) []float64) []func([]float64) []float64 {
	var perturbations []func([]float64) []float64
	for _, p := range registry {
		perturbations = append(perturbations, p) // want `append to perturbations in map iteration order`
	}
	return perturbations
}
