// Fixture: determinism violations in scheduler shapes. A work queue built by
// ranging a map bakes iteration order into the claim sequence of a scheduler
// whose consumers DON'T write row-indexed slots, and timing a steal decision
// with the ambient clock makes the schedule — and anything folded in claim
// order — a function of wall time.
package fixture

import "time"

// queueFromMap seeds a scheduler's work list by ranging over a map of dirty
// rows: the claim sequence (and any claim-ordered output) differs run to
// run before a single worker starts.
func queueFromMap(dirty map[int]bool) []int {
	var queue []int
	for row := range dirty {
		queue = append(queue, row) // want `append to queue in map iteration order`
	}
	return queue
}

// deadlineSteal steals only while wall-clock budget remains: the steal
// history — and the claim-ordered result concatenation — depends on ambient
// time, not on the input.
func deadlineSteal(spans []stealSpan, budget time.Duration) []int {
	start := time.Now() // want `wall-clock read time.Now`
	var claimed []int
	for v := range spans {
		for spans[v].next < spans[v].end {
			if time.Since(start) > budget { // want `wall-clock read time.Since`
				return claimed
			}
			claimed = append(claimed, spans[v].next)
			spans[v].next++
		}
	}
	return claimed
}
