// Fixture: the blessed work-stealing shape. A scheduler may hand out rows
// in any order and let idle workers steal — determinism comes from writing
// results into row-indexed slots (a pure function of the row, not of who
// processed it or when), with any ordered view produced by a canonical sort
// afterward. Nothing here may be flagged.
package fixture

import (
	"sort"
	"sync"
)

// stealSpan is one worker's claimable row range.
type stealSpan struct {
	next, end int
}

// workStealingSweep claims rows from per-worker spans (stealing the tail of
// the busiest span when a worker's own runs dry) and writes each row's
// result into its own slot: the output is identical whatever the steal
// history, so the scheduler is a pure locality/balance lever.
func workStealingSweep(rows int, workers int, process func(row int) float64) []float64 {
	spans := make([]stealSpan, workers)
	for w := range spans {
		spans[w] = stealSpan{next: w * rows / workers, end: (w + 1) * rows / workers}
	}
	var mu sync.Mutex
	claim := func(w int) (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if spans[w].next < spans[w].end {
			row := spans[w].next
			spans[w].next++
			return row, true
		}
		// Steal from the fattest remaining span, scanned in index order so
		// ties break the same way every run (and even if they didn't, the
		// row-indexed writes below are claim-order-independent anyway).
		victim, best := -1, 0
		for v := range spans {
			if left := spans[v].end - spans[v].next; left > best {
				victim, best = v, left
			}
		}
		if victim < 0 {
			return 0, false
		}
		row := spans[victim].next
		spans[victim].next++
		return row, true
	}

	perRow := make([]float64, rows)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				row, ok := claim(w)
				if !ok {
					return
				}
				perRow[row] = process(row) // row-indexed: schedule-independent
			}
		}(w)
	}
	wg.Wait()
	return perRow
}

// canonicalOrder is the companion pattern for outputs that are collected
// unordered (per-worker buffers): a total-order sort fixes the presentation
// so the concatenation order never shows through.
func canonicalOrder(collected []float64) []float64 {
	sort.Float64s(collected)
	return collected
}
