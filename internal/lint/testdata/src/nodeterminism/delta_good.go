// Fixture: the delta-maintenance shapes that must stay silent — dirty sets
// flattened then sorted before use, and canonical sample selection driven by
// a seeded hash rather than ambient randomness.
package fixture

import "sort"

// sortedDirtyRegions mirrors DeltaPartitioning.Dirty: the set is flattened
// from the map and sorted in the same function, so downstream rescore order
// is input-determined.
func sortedDirtyRegions(dirty map[int]struct{}) []int {
	var regions []int
	for r := range dirty {
		regions = append(regions, r)
	}
	sort.Ints(regions)
	return regions
}

// bottomKByRank mirrors the canonical sampler's selection: ranks come from a
// seeded hash of (region, position), ties break on position, and the chosen
// positions are re-sorted into canonical order — no ambient state anywhere.
func bottomKByRank(ranks []uint64, k int) []int {
	sel := make([]int, 0, len(ranks))
	for pos := range ranks {
		sel = append(sel, pos)
	}
	sort.Slice(sel, func(a, b int) bool {
		if ranks[sel[a]] != ranks[sel[b]] {
			return ranks[sel[a]] < ranks[sel[b]]
		}
		return sel[a] < sel[b]
	})
	if len(sel) > k {
		sel = sel[:k]
	}
	sort.Ints(sel)
	return sel
}
