// Fixture: determinism violations in delta-maintenance shapes. The delta
// partition layer's dirty-set and update-stream bookkeeping feeds the
// delta-equals-batch byte-identity contract, so region order must never come
// from map iteration and update application must never read the clock.
package fixture

import "time"

// dirtyRegionsFromSet flattens a dirty-region set by ranging over the map:
// the rescore order — and with it the result assembly — would follow map
// iteration order, which Go randomizes per run.
func dirtyRegionsFromSet(dirty map[int]struct{}) []int {
	var regions []int
	for r := range dirty {
		regions = append(regions, r) // want `append to regions in map iteration order`
	}
	return regions
}

// timedApply stamps each applied update with the wall clock instead of an
// injected clock, so two replays of the same stream disagree.
func timedApply(stream []int) (int, time.Duration) {
	start := time.Now() // want `wall-clock read time.Now`
	applied := 0
	for range stream {
		applied++
	}
	return applied, time.Since(start) // want `wall-clock read time.Since`
}
