// Fixture: the index and scheduler shapes the audit actually uses, which
// must stay silent — positions built from ordered slices, permutations
// sorted by key before use, and windows resolved by binary search.
package fixture

import "sort"

// buildSortedIndex mirrors the per-dimension summary index build: positions
// come from an ordered slice and the permutation is sorted by key (NaN keys
// excluded by the caller), so the order is input-determined.
func buildSortedIndex(keys []float64) []int {
	pos := make([]int, 0, len(keys))
	for i := range keys {
		pos = append(pos, i)
	}
	sort.Slice(pos, func(a, b int) bool { return keys[pos[a]] < keys[pos[b]] })
	return pos
}

// windowCount mirrors the candidate plan's estimate step: two binary
// searches over a sorted probe array, clamped so an inverted interval is
// empty rather than negative. No ambient state is consulted.
func windowCount(sorted []float64, lo, hi float64) int {
	left := sort.SearchFloat64s(sorted, lo)
	right := sort.SearchFloat64s(sorted, hi)
	if right < left {
		right = left
	}
	return right - left
}
