// Fixture: determinism-respecting patterns the analyzer must not flag.
package fixture

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// sortedKeys appends in map order but sorts before returning.
func sortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortedPairs sorts via a comparator closure referencing the slice.
func sortedPairs(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// injectedClock takes its time source as a parameter (the Config.Clock
// pattern); referencing time.Time as a type is not a wall-clock read.
func injectedClock(now func() time.Time) time.Duration {
	start := now()
	return now().Sub(start)
}

// loopLocal appends to a slice scoped inside the iteration; order cannot
// leak past one key's processing.
func loopLocal(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var acc []int
		acc = append(acc, vs...)
		total += len(acc)
	}
	return total
}

// rangeSlice iterates a slice, which is ordered; appends are fine.
func rangeSlice(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x*2)
	}
	return out
}

// dynamicRowScheduler is the audit engine's sweep shape: workers claim rows
// off an atomic counter (scheduling is nondeterministic, results are not),
// append into per-worker shards, and the merged output is sorted before use.
// Nothing here reads a map, so no append is flagged, and the final sort keeps
// the merged order schedule-independent.
func dynamicRowScheduler(rows [][]float64, workers int) []float64 {
	shards := make([][]float64, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(rows) {
					return
				}
				for _, v := range rows[i] {
					shards[w] = append(shards[w], v)
				}
			}
		}(w)
	}
	wg.Wait()
	var out []float64
	for _, sh := range shards {
		out = append(out, sh...)
	}
	sort.Float64s(out)
	return out
}
