// Fixture: determinism violations the nodeterminism analyzer must catch.
// Checked under a package path inside internal/core, so it is in scope.
package fixture

import (
	"math/rand" // want `import of math/rand`
	"time"
)

// globalRand draws from the global math/rand stream (flagged at the import).
func globalRand() int {
	return rand.Intn(10)
}

// wallClock reads ambient time twice.
func wallClock() time.Duration {
	start := time.Now()      // want `wall-clock read time.Now`
	return time.Since(start) // want `wall-clock read time.Since`
}

// mapOrderLeak returns keys in map iteration order with no sort.
func mapOrderLeak(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys in map iteration order`
	}
	return keys
}

// tupleMapOrderLeak hides the appends in one tuple assignment; both slices
// still bake in map iteration order.
func tupleMapOrderLeak(m map[string]int) ([]string, []int) {
	var keys []string
	var vals []int
	for k, v := range m {
		keys, vals = append(keys, k), append(vals, v) // want `append to keys in map iteration order` `append to vals in map iteration order`
	}
	return keys, vals
}

// precomputeFromMap models a precompute pass that builds per-region caches by
// ranging over a map of regions: the cache slice ends up in iteration order.
func precomputeFromMap(regions map[int][]float64) [][]float64 {
	var caches [][]float64
	for _, sample := range regions {
		prepared := make([]float64, len(sample))
		copy(prepared, sample)
		caches = append(caches, prepared) // want `append to caches in map iteration order`
	}
	return caches
}
