// Fixture: determinism violations the nodeterminism analyzer must catch.
// Checked under a package path inside internal/core, so it is in scope.
package fixture

import (
	"math/rand" // want `import of math/rand`
	"time"
)

// globalRand draws from the global math/rand stream (flagged at the import).
func globalRand() int {
	return rand.Intn(10)
}

// wallClock reads ambient time twice.
func wallClock() time.Duration {
	start := time.Now()      // want `wall-clock read time.Now`
	return time.Since(start) // want `wall-clock read time.Since`
}

// mapOrderLeak returns keys in map iteration order with no sort.
func mapOrderLeak(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys in map iteration order`
	}
	return keys
}
