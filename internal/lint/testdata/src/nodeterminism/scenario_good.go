// Fixture: the determinism-respecting scenario-generator shapes that
// internal/verify actually uses, which the analyzer must not flag: every
// source of randomness is an explicit caller-seeded generator parameter, and
// registry maps are drained in sorted key order.
package fixture

import "sort"

// scenarioRNG stands in for stats.RNG: a deterministic generator that the
// caller constructs from an explicit seed and threads through the build.
type scenarioRNG struct{ state uint64 }

func (r *scenarioRNG) float() float64 {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return float64(r.state>>11) / (1 << 53)
}

// seededScenario is the correct generator shape: all randomness flows from
// the injected rng, so (seed, size) fully determines the output.
func seededScenario(rng *scenarioRNG, tracts int) []float64 {
	out := make([]float64, tracts)
	for i := range out {
		out[i] = rng.float()
	}
	return out
}

// sortedPerturbations drains a perturbation registry in sorted key order, so
// the perturbation sequence — and every RNG stream derived along it — is
// reproducible.
func sortedPerturbations(registry map[string]func([]float64) []float64) []func([]float64) []float64 {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	perturbations := make([]func([]float64) []float64, 0, len(names))
	for _, name := range names {
		perturbations = append(perturbations, registry[name])
	}
	return perturbations
}
