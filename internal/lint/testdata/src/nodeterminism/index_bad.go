// Fixture: determinism violations in candidate-index shapes. The audit's
// index build must never bake map iteration order into its probe arrays or
// time a window join with the ambient clock.
package fixture

import "time"

// summaryIndexFromMap builds a per-dimension probe array by ranging over a
// map of region summary keys: the array lands in map iteration order, so two
// runs disagree on tie order before any sort runs.
func summaryIndexFromMap(summaries map[int]float64) []float64 {
	var probes []float64
	for _, s := range summaries {
		probes = append(probes, s) // want `append to probes in map iteration order`
	}
	return probes
}

// timedWindowJoin times the sliding-window join with wall-clock reads instead
// of an injected Clock, leaking ambient time into recorded durations.
func timedWindowJoin(keys []float64, lo, hi float64) (int, time.Duration) {
	start := time.Now() // want `wall-clock read time.Now`
	count := 0
	for _, k := range keys {
		if k >= lo && k <= hi {
			count++
		}
	}
	return count, time.Since(start) // want `wall-clock read time.Since`
}
