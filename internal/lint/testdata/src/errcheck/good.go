// Fixture: error handling the errcheck analyzer must accept.
package fixture

import (
	"bytes"
	"fmt"
	"strings"
)

func mayFail() error { return nil }

func handled() error {
	if err := mayFail(); err != nil {
		return err
	}
	return mayFail()
}

// explicitDrop acknowledges the discard; blank assignment is greppable.
func explicitDrop() {
	_ = mayFail()
}

// deferredDrop is out of scope for the lite checker.
func deferredDrop() {
	defer mayFail()
}

// allowlisted callees never fail interestingly.
func allowlisted() string {
	var sb strings.Builder
	sb.WriteString("ok")
	var buf bytes.Buffer
	buf.WriteByte('!')
	fmt.Println("ok")
	return sb.String() + buf.String()
}

// pureValue returns no error at all.
func pureValue() int { return 1 }

func noError() {
	pureValue()
}
