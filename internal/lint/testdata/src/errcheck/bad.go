// Fixture: dropped error results the errcheck analyzer must catch.
package fixture

import (
	"errors"
	"os"
)

func fail() error { return errors.New("boom") }

func failWithValue() (int, error) { return 0, errors.New("boom") }

type closer struct{}

func (closer) Close() error { return nil }

func dropped() {
	fail()          // want `error result of fail is dropped`
	failWithValue() // want `error result of failWithValue is dropped`
	os.Remove("x")  // want `error result of os.Remove is dropped`
	var c closer
	c.Close() // want `error result of c.Close is dropped`
}
