// Fixture: disciplined per-goroutine RNG derivation the analyzer must allow.
package fixture

import (
	"sync"

	"lcsf/internal/stats"
)

// splitPerShard derives one independent stream per goroutine with Split;
// the parent never crosses a goroutine boundary.
func splitPerShard(shards int) {
	parent := stats.NewRNG(1)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		rng := parent.Split()
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = rng.Float64()
		}()
	}
	wg.Wait()
}

// seededPerShard passes a freshly seeded generator as a parameter (the
// core.pairSeed pattern); the closure captures nothing.
func seededPerShard(shards int) {
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(r *stats.RNG) {
			defer wg.Done()
			_ = r.Float64()
		}(stats.NewRNG(uint64(i)))
	}
	wg.Wait()
}

// singleGoroutine hands the generator to exactly one goroutine and never
// touches it again; one stream, one owner.
func singleGoroutine() {
	rng := stats.NewRNG(3)
	done := make(chan float64, 1)
	go func() {
		done <- rng.Float64()
	}()
	<-done
}
