// Fixture: RNG-sharing violations the rngdiscipline analyzer must catch.
package fixture

import (
	"sync"

	"lcsf/internal/stats"
)

// sharedAcrossLoop launches one goroutine per shard, every one of them
// drawing from the same stream.
func sharedAcrossLoop(shards int) {
	rng := stats.NewRNG(1)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = rng.Float64() // want `captured by a goroutine launched in a loop`
		}()
	}
	wg.Wait()
}

// sharedTwice captures one generator in two distinct goroutine closures.
func sharedTwice() {
	rng := stats.NewRNG(2)
	done := make(chan struct{}, 2)
	go func() {
		_ = rng.Float64() // want `captured by 2 goroutine-spawning closures`
		done <- struct{}{}
	}()
	go func() {
		_ = rng.Uint64() // want `captured by 2 goroutine-spawning closures`
		done <- struct{}{}
	}()
	<-done
	<-done
}
