// Fixture: the null cache's fill discipline, which must stay silent — each
// key derives its own seed and owns a fresh generator for its simulation, so
// cached values are a pure function of the key and the audit seed.
package fixture

import (
	"sync"

	"lcsf/internal/stats"
)

// perKeyCacheFill derives one generator per key from a mixed per-key seed
// (the null-cache seeding pattern); no generator crosses a goroutine
// boundary, so eviction and re-simulation reproduce identical worlds.
func perKeyCacheFill(keys []uint64, worlds int) {
	var wg sync.WaitGroup
	for _, key := range keys {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := stats.NewRNG(seed)
			for w := 0; w < worlds; w++ {
				_ = rng.Float64()
			}
		}(0x9E3779B97F4A7C15 ^ key)
	}
	wg.Wait()
}
