// Fixture: RNG sharing in a cache-fill shape the analyzer must catch — one
// parent generator feeding every entry's null-world simulation while the
// fills run on separate goroutines.
package fixture

import (
	"sync"

	"lcsf/internal/stats"
)

// sharedCacheFill simulates null worlds for many cache keys concurrently,
// with every fill goroutine drawing from the same parent stream: the worlds
// any one key sees now depend on goroutine interleaving.
func sharedCacheFill(keys []uint64, worlds int) {
	rng := stats.NewRNG(9)
	var wg sync.WaitGroup
	for range keys {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for w := 0; w < worlds; w++ {
				_ = rng.Float64() // want `captured by a goroutine launched in a loop`
			}
		}()
	}
	wg.Wait()
}
