// Fixture: cancellation-responsiveness cases for ctxpoll. Data-dependent
// loops that drive //lint:hotpath kernels must mention ctx in the loop body;
// bookkeeping loops, constant-bound loops, and ctx-free functions are out of
// scope by design.
package fixture

import "context"

type pair struct{ a, b float64 }

//lint:hotpath
func kernel(a, b float64) float64 { return a + b }

// silentRange drives the kernel over a data-dependent range without ever
// consulting ctx.
func silentRange(ctx context.Context, pairs []pair) float64 {
	var sum float64
	for _, p := range pairs { // want `without polling ctx`
		sum += kernel(p.a, p.b)
	}
	return sum
}

// silentFor is the counted-loop variant: the bound n is runtime data.
func silentFor(ctx context.Context, n int, ps []pair) float64 {
	var sum float64
	for i := 0; i < n; i++ { // want `without polling ctx`
		sum += kernel(ps[i].a, ps[i].b)
	}
	return sum
}

// viaClosure reaches the kernel only through a local closure referenced in
// the loop; reachability must see through the binding.
func viaClosure(ctx context.Context, pairs []pair) float64 {
	score := func(p pair) float64 { return kernel(p.a, p.b) }
	var sum float64
	for _, p := range pairs { // want `without polling ctx`
		sum += score(p)
	}
	return sum
}

// strided polls ctx.Err on a bounded stride — the blessed pattern.
func strided(ctx context.Context, pairs []pair) float64 {
	var sum float64
	for i, p := range pairs { // want:none — polls within a bounded stride
		if i%1024 == 0 && ctx.Err() != nil {
			return sum
		}
		sum += kernel(p.a, p.b)
	}
	return sum
}

// bookkeeping never reaches the kernel; forcing a poll into a commit loop
// that must complete atomically would be wrong, not just noisy.
func bookkeeping(ctx context.Context, xs []float64) float64 {
	_ = ctx
	var sum float64
	for _, x := range xs { // want:none — does not reach a hot kernel
		sum += x
	}
	return sum
}

// noCtx has no context in scope at all: nothing to poll.
func noCtx(pairs []pair) float64 {
	var sum float64
	for _, p := range pairs { // want:none — no ctx in scope
		sum += kernel(p.a, p.b)
	}
	return sum
}

// constantBound has a compile-time trip count; responsiveness is bounded by
// construction.
func constantBound(ctx context.Context) float64 {
	_ = ctx
	var sum float64
	for i := 0; i < 64; i++ { // want:none — constant trip count
		sum += kernel(1, 2)
	}
	return sum
}

// acknowledged keeps an atomic commit loop behind the escape hatch.
func acknowledged(ctx context.Context, pairs []pair) float64 {
	_ = ctx
	var sum float64
	for _, p := range pairs { //lint:ctxpoll-ok commit loop must complete atomically // want:none
		sum += kernel(p.a, p.b)
	}
	return sum
}
