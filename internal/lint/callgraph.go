package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// This file builds a whole-program view over the loaded packages so analyzers
// can reason interprocedurally: a function index keyed by stable string keys,
// call resolution (static calls plus a class-hierarchy approximation for
// dynamic interface calls), and reachability from annotated hot-path entry
// points.
//
// Soundness note on identity: every source-checked package resolves its
// imports from compiler export data, so the *types.Package (and all objects
// in it) that package A sees for package B is a different instance from the
// one produced by source-checking B itself. Pointer identity of types.Object
// therefore does not survive package boundaries; functions are keyed by the
// string funcKey (import path + receiver type name + function name), which
// does.

// hotPathDirective marks a function declaration as a zero-alloc kernel entry
// point; hotpathalloc walks the callgraph from every marked declaration.
const hotPathDirective = "lint:hotpath"

// A FuncInfo is one function or method declaration with a body, in the set of
// packages under analysis.
type FuncInfo struct {
	Key  string // see funcKey
	Pkg  *Package
	File *ast.File
	Decl *ast.FuncDecl
	Obj  *types.Func
	// Hot records a //lint:hotpath directive on the declaration.
	Hot bool
}

// Name renders the function for diagnostics: "Func" or "(Type).Method".
func (fi *FuncInfo) Name() string { return funcDeclName(fi.Decl) }

// A Program indexes every function declaration across the packages of one
// lint.Run invocation and memoizes the interprocedural facts analyzers
// derive from it (each analyzer runs once per package, but program-wide
// closures should be computed once).
type Program struct {
	Pkgs  []*Package
	funcs map[string]*FuncInfo
	// methodsByName supports the CHA approximation: all concrete methods in
	// the program sharing a name, the candidate targets of a dynamic call.
	methodsByName map[string][]*FuncInfo

	mayReachHot map[string]bool // lazily computed; see MayReachHot

	// analyzerData lets an analyzer stash a program-wide computation the
	// first time any of its per-package passes runs. Keyed by analyzer name.
	analyzerData map[string]any
}

// NewProgram indexes the packages' function declarations.
func NewProgram(pkgs []*Package) *Program {
	p := &Program{
		Pkgs:          pkgs,
		funcs:         map[string]*FuncInfo{},
		methodsByName: map[string][]*FuncInfo{},
		analyzerData:  map[string]any{},
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			hotLines := directiveLines(pkg.Fset, file, hotPathDirective)
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fn.Name].(*types.Func)
				if obj == nil {
					continue
				}
				key := funcKey(obj)
				if key == "" {
					continue
				}
				fi := &FuncInfo{
					Key:  key,
					Pkg:  pkg,
					File: file,
					Decl: fn,
					Obj:  obj,
					Hot:  hotLines[pkg.Fset.Position(fn.Pos()).Line],
				}
				p.funcs[key] = fi
				if fn.Recv != nil {
					p.methodsByName[fn.Name.Name] = append(p.methodsByName[fn.Name.Name], fi)
				}
			}
		}
	}
	return p
}

// funcKey renders a *types.Func as a package-qualified string that is stable
// across type-checker instances: "path.Func" or "path.(Recv).Method" (pointer
// receivers are not distinguished — a type has one method set per name).
// Interface methods and local closures yield "".
func funcKey(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	recv := sig.Recv()
	if recv == nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || types.IsInterface(named) {
		return ""
	}
	return fn.Pkg().Path() + ".(" + named.Obj().Name() + ")." + fn.Name()
}

// Func returns the declaration for a resolved function object, or nil when
// the object is from outside the analyzed packages (stdlib, export data with
// no matching source).
func (p *Program) Func(obj types.Object) *FuncInfo {
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return p.funcs[funcKey(fn)]
}

// HotEntries returns every //lint:hotpath-annotated declaration, in stable
// key order.
func (p *Program) HotEntries() []*FuncInfo {
	var out []*FuncInfo
	for _, fi := range p.funcs {
		if fi.Hot {
			out = append(out, fi)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Callees resolves a call expression in pkg to the program function
// declarations it may invoke: the single static target for direct calls, or
// — for calls through an interface method — every concrete method in the
// program whose name and shape match and whose receiver type plausibly
// implements the interface (class-hierarchy analysis by method-set matching;
// types.Implements is unusable here because named types from different
// checker instances never compare identical). Calls to functions outside the
// program (stdlib, builtins, func values) resolve to nil.
func (p *Program) Callees(pkg *Package, call *ast.CallExpr) []*FuncInfo {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fi := p.Func(pkg.Info.Uses[fun]); fi != nil {
			return []*FuncInfo{fi}
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			mobj, _ := sel.Obj().(*types.Func)
			if mobj == nil {
				return nil
			}
			recv := sel.Recv()
			if types.IsInterface(recv) {
				return p.chaTargets(recv, mobj)
			}
			if fi := p.funcs[funcKey(mobj)]; fi != nil {
				return []*FuncInfo{fi}
			}
			return nil
		}
		// Qualified identifier pkg.Func (no selection recorded).
		if fi := p.Func(pkg.Info.Uses[fun.Sel]); fi != nil {
			return []*FuncInfo{fi}
		}
	}
	return nil
}

// chaTargets returns the program methods a dynamic call to iface.m may
// dispatch to: same name, same parameter/result counts, on a receiver type
// whose method set covers every method of the interface (each matched by
// name and shape). Matching is structural-by-count rather than by
// types.Identical because the interface's types and the candidates' types
// come from different checker instances.
func (p *Program) chaTargets(iface types.Type, m *types.Func) []*FuncInfo {
	it, ok := iface.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*FuncInfo
	for _, cand := range p.methodsByName[m.Name()] {
		if !sameShape(cand.Obj, m) {
			continue
		}
		if implementsByShape(cand.Obj, it) {
			out = append(out, cand)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// sameShape reports whether two functions agree on parameter and result
// counts and variadicity — the cross-checker-instance stand-in for signature
// identity.
func sameShape(a, b *types.Func) bool {
	sa, aok := a.Type().(*types.Signature)
	sb, bok := b.Type().(*types.Signature)
	if !aok || !bok {
		return false
	}
	return sa.Params().Len() == sb.Params().Len() &&
		sa.Results().Len() == sb.Results().Len() &&
		sa.Variadic() == sb.Variadic()
}

// implementsByShape reports whether the receiver type of method cand carries
// a method matching every method of iface by name and shape. It prunes CHA
// candidates that merely share one method name with the interface.
func implementsByShape(cand *types.Func, iface *types.Interface) bool {
	sig := cand.Type().(*types.Signature)
	recv := sig.Recv().Type()
	// Use the pointer type's method set: it includes both value- and
	// pointer-receiver methods, which is the most permissive (sound) choice.
	if _, ok := recv.(*types.Pointer); !ok {
		recv = types.NewPointer(recv)
	}
	mset := types.NewMethodSet(recv)
	for i := 0; i < iface.NumMethods(); i++ {
		want := iface.Method(i)
		found := false
		for j := 0; j < mset.Len(); j++ {
			got, _ := mset.At(j).Obj().(*types.Func)
			if got != nil && got.Name() == want.Name() && sameShape(got, want) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// MayReachHot reports whether fn may transitively call a //lint:hotpath
// entry point (the entry points themselves included). The closure is
// computed once per Program by a reverse fixpoint over the call edges.
func (p *Program) MayReachHot(fi *FuncInfo) bool {
	if p.mayReachHot == nil {
		p.computeMayReachHot()
	}
	return p.mayReachHot[fi.Key]
}

func (p *Program) computeMayReachHot() {
	// Collect each function's callee keys once (calls anywhere in the body,
	// including nested function literals — a closure defined in f runs with
	// f's dynamic extent as far as reachability is concerned).
	callees := map[string]map[string]bool{}
	for _, fi := range p.funcs {
		set := map[string]bool{}
		fi := fi
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, target := range p.Callees(fi.Pkg, call) {
				set[target.Key] = true
			}
			return true
		})
		callees[fi.Key] = set
	}
	reach := map[string]bool{}
	for _, fi := range p.funcs {
		if fi.Hot {
			reach[fi.Key] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for key, set := range callees {
			if reach[key] {
				continue
			}
			for callee := range set {
				if reach[callee] {
					reach[key] = true
					changed = true
					break
				}
			}
		}
	}
	p.mayReachHot = reach
}

// data returns the analyzer's memoized program-wide computation, building it
// on first use. Run applies analyzers sequentially, so no locking is needed.
func (p *Program) data(name string, build func() any) any {
	if v, ok := p.analyzerData[name]; ok {
		return v
	}
	v := build()
	p.analyzerData[name] = v
	return v
}
