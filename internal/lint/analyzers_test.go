package lint_test

import (
	"testing"

	"lcsf/internal/lint"
	"lcsf/internal/lint/linttest"
)

// Each analyzer gets one fixture package with positive cases (// want
// comments that must be matched by a diagnostic) and negative cases (clean
// patterns that must stay silent). The fixture's import path places it
// inside the analyzer's scope where scoping applies.

func TestNoDeterminism(t *testing.T) {
	linttest.Run(t, lint.NoDeterminism, "testdata/src/nodeterminism", "lcsf/internal/core/fixture")
}

// TestNoDeterminismCoversVerify rechecks the same fixtures under an
// internal/verify import path: the verification subsystem's scenario
// generators are determinism-critical (its oracles assert bit-identical
// flagged sets), so the analyzer must fire there too.
func TestNoDeterminismCoversVerify(t *testing.T) {
	linttest.Run(t, lint.NoDeterminism, "testdata/src/nodeterminism", "lcsf/internal/verify/fixture")
}

// TestNoDeterminismCoversPartition rechecks the same fixtures under an
// internal/partition import path: the delta layer's canonical sampling and
// dirty-set bookkeeping carry the delta-equals-batch byte-identity contract,
// so the analyzer must fire there too.
func TestNoDeterminismCoversPartition(t *testing.T) {
	linttest.Run(t, lint.NoDeterminism, "testdata/src/nodeterminism", "lcsf/internal/partition/fixture")
}

func TestRNGDiscipline(t *testing.T) {
	linttest.Run(t, lint.RNGDiscipline, "testdata/src/rngdiscipline", "lcsf/lintfixture/rngdiscipline")
}

func TestFloatEq(t *testing.T) {
	linttest.Run(t, lint.FloatEq, "testdata/src/floateq", "lcsf/lintfixture/floateq")
}

func TestNilSafeObs(t *testing.T) {
	linttest.Run(t, lint.NilSafeObs, "testdata/src/nilsafeobs", "lcsf/internal/obs/fixture")
}

func TestErrCheck(t *testing.T) {
	linttest.Run(t, lint.ErrCheck, "testdata/src/errcheck", "lcsf/lintfixture/errcheck")
}

func TestHotPathAlloc(t *testing.T) {
	linttest.Run(t, lint.HotPathAlloc, "testdata/src/hotpathalloc", "lcsf/lintfixture/hotpathalloc")
}

func TestSeedTaint(t *testing.T) {
	linttest.Run(t, lint.SeedTaint, "testdata/src/seedtaint", "lcsf/lintfixture/seedtaint")
}

func TestLockSafe(t *testing.T) {
	linttest.Run(t, lint.LockSafe, "testdata/src/locksafe", "lcsf/lintfixture/locksafe")
}

// TestCtxPoll runs the ctxpoll fixture under an internal/core import path —
// the analyzer is scoped to the audit engine, where data-dependent loops
// track region/pair counts.
func TestCtxPoll(t *testing.T) {
	linttest.Run(t, lint.CtxPoll, "testdata/src/ctxpoll", "lcsf/internal/core/fixture")
}

// TestScopedAnalyzersIgnoreOutOfScopePackages rechecks the nodeterminism and
// nilsafeobs fixtures under neutral import paths: every violation in them
// must go unreported, because path scoping is what keeps the hot-path rules
// from harassing examples and cmd binaries.
func TestScopedAnalyzersIgnoreOutOfScopePackages(t *testing.T) {
	cases := []struct {
		analyzer *lint.Analyzer
		dir      string
	}{
		{lint.NoDeterminism, "testdata/src/nodeterminism"},
		{lint.NilSafeObs, "testdata/src/nilsafeobs"},
		{lint.CtxPoll, "testdata/src/ctxpoll"},
	}
	for _, tc := range cases {
		pkg, err := lint.CheckDir(tc.dir, "lcsf/examples/fixture")
		if err != nil {
			t.Fatalf("loading %s: %v", tc.dir, err)
		}
		diags, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{tc.analyzer})
		if err != nil {
			t.Fatalf("running %s: %v", tc.analyzer.Name, err)
		}
		for _, d := range diags {
			t.Errorf("%s fired out of scope: %s", tc.analyzer.Name, d)
		}
	}
}

// TestAllAnalyzersRegistered pins the multichecker suite so a new analyzer
// cannot be added without joining All() (and therefore make lint and CI).
func TestAllAnalyzersRegistered(t *testing.T) {
	want := []string{
		"nodeterminism", "rngdiscipline", "floateq", "nilsafeobs", "errcheck",
		"hotpathalloc", "seedtaint", "locksafe", "ctxpoll",
	}
	all := lint.All()
	if len(all) != len(want) {
		t.Fatalf("All() has %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("All()[%d] = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %s missing Doc or Run", a.Name)
		}
	}
}
