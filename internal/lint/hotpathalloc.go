package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathAlloc is the static counterpart of TestAuditPairKernelZeroAlloc:
// functions annotated //lint:hotpath are zero-alloc kernel entry points, and
// no heap allocation, closure capture, goroutine spawn, or interface boxing
// may be reachable from them through the repo callgraph. Dynamic interface
// calls are resolved conservatively (every program method matching the
// interface by shape), so a new PreparedMetric implementation joins the
// contract the moment it is written.
//
// //lint:hotpathalloc-ok on a line suppresses findings on that line and acts
// as a traversal barrier: calls made on it are not followed (the annotated
// amortized/fallback path is exactly the part excluded from the contract).
// On a function declaration's line it exempts the whole function.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc: "forbid heap allocation, closure capture, goroutine spawns, and interface boxing " +
		"reachable from //lint:hotpath entry points; suppress with //lint:hotpathalloc-ok",
	Run: runHotPathAlloc,
}

const hotPathAllocOkDirective = "lint:hotpathalloc-ok"

// hotFinding is one allocation site discovered by the program-wide
// traversal; findings are computed once per Program and emitted by whichever
// per-package pass owns the site.
type hotFinding struct {
	pkg *Package
	pos token.Pos
	msg string
}

func runHotPathAlloc(pass *Pass) error {
	findings := pass.Prog.data("hotpathalloc", func() any {
		return hotPathFindings(pass.Prog)
	}).([]hotFinding)
	for _, f := range findings {
		if f.pkg.Types == pass.Pkg {
			pass.Reportf(f.pos, "%s", f.msg)
		}
	}
	return nil
}

// hotPathFindings walks the callgraph breadth-first from every
// //lint:hotpath entry and records allocation vocabulary in each reachable
// function body.
func hotPathFindings(prog *Program) []hotFinding {
	var findings []hotFinding
	visited := map[string]bool{}
	type item struct {
		fi    *FuncInfo
		entry string
	}
	var queue []item
	for _, fi := range prog.HotEntries() {
		queue = append(queue, item{fi, fi.Name()})
	}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		fi := it.fi
		if visited[fi.Key] {
			continue
		}
		visited[fi.Key] = true
		allowed := directiveLines(fi.Pkg.Fset, fi.File, hotPathAllocOkDirective)
		if allowed[fi.Pkg.Fset.Position(fi.Decl.Pos()).Line] {
			continue // whole function exempted: no findings, no descent
		}
		scanHotFunc(prog, fi, it.entry, allowed, &findings, func(next *FuncInfo) {
			queue = append(queue, item{next, it.entry})
		})
	}
	return findings
}

// scanHotFunc checks one reachable function body and enqueues its callees.
func scanHotFunc(prog *Program, fi *FuncInfo, entry string, allowed map[int]bool, findings *[]hotFinding, enqueue func(*FuncInfo)) {
	info := fi.Pkg.Info
	fset := fi.Pkg.Fset
	report := func(pos token.Pos, what string) {
		if allowed[fset.Position(pos).Line] {
			return
		}
		*findings = append(*findings, hotFinding{
			pkg: fi.Pkg,
			pos: pos,
			msg: what + " in zero-alloc hot path " + fi.Name() +
				" (reachable from //lint:hotpath entry " + entry + "); hoist it out of the kernel or mark //lint:hotpathalloc-ok",
		})
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			report(n.Pos(), "goroutine spawn")

		case *ast.FuncLit:
			if closureCaptures(info, n) {
				report(n.Pos(), "closure capturing variables (heap-allocated at creation)")
			}
			// Descend either way: the literal's body runs in the hot path
			// when it is invoked here (callbacks, once.Do fills).
			return true

		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, isLit := ast.Unparen(n.X).(*ast.CompositeLit); isLit {
					report(n.Pos(), "address of composite literal (escapes to the heap)")
				}
			}

		case *ast.CompositeLit:
			if t := info.Types[n].Type; t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					report(n.Pos(), "slice/map literal")
				}
			}

		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := info.Types[n].Type; t != nil && isString(t) && info.Types[n].Value == nil {
					report(n.OpPos, "string concatenation")
				}
			}

		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if t := info.Types[idx.X].Type; t != nil {
						if _, isMap := t.Underlying().(*types.Map); isMap {
							report(lhs.Pos(), "map assignment (may grow the map)")
						}
					}
				}
			}

		case *ast.CallExpr:
			scanHotCall(prog, fi, n, allowed, report, enqueue)
		}
		return true
	})
}

// scanHotCall classifies one call in a hot function: allocating builtins,
// allocating conversions, known-allocating stdlib, interface boxing of
// arguments, and callgraph edges to follow.
func scanHotCall(prog *Program, fi *FuncInfo, call *ast.CallExpr, allowed map[int]bool, report func(token.Pos, string), enqueue func(*FuncInfo)) {
	info := fi.Pkg.Info
	fun := ast.Unparen(call.Fun)

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.ObjectOf(id).(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(call.Pos(), "make")
			case "new":
				report(call.Pos(), "new")
			case "append":
				report(call.Pos(), "append (may grow the slice)")
			}
			return
		}
	}

	// Conversions: string<->[]byte/[]rune copy; conversion to interface boxes.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			to, from := tv.Type, info.Types[call.Args[0]].Type
			switch {
			case isString(to) != isString(from) && (isString(to) || isString(from)):
				report(call.Pos(), "string conversion (copies the bytes)")
			case to != nil && types.IsInterface(to):
				reportBoxing(info, call.Args[0], report)
			}
		}
		return
	}

	// Known-allocating stdlib.
	if obj := calleeObjectInfo(info, call); obj != nil && obj.Pkg() != nil {
		switch obj.Pkg().Path() {
		case "fmt", "errors":
			report(call.Pos(), "call to "+obj.Pkg().Path()+"."+obj.Name()+" (allocates)")
			return
		}
	}

	// Interface boxing of arguments against the callee signature.
	if sig := calleeSignature(info, fun); sig != nil && !call.Ellipsis.IsValid() {
		for i, arg := range call.Args {
			p := paramAt(sig, i)
			if p == nil || !types.IsInterface(p) {
				continue
			}
			reportBoxing(info, arg, report)
		}
	}

	// Follow program callees — unless the call line carries the barrier.
	if allowed[fi.Pkg.Fset.Position(call.Pos()).Line] {
		return
	}
	for _, target := range prog.Callees(fi.Pkg, call) {
		enqueue(target)
	}
}

// reportBoxing flags arg when storing it in an interface allocates: a
// non-constant value of a concrete, non-pointer-shaped type. Constants use
// the compiler's static boxes; pointers, maps, channels, and funcs fit the
// interface data word directly.
func reportBoxing(info *types.Info, arg ast.Expr, report func(token.Pos, string)) {
	tv := info.Types[arg]
	if tv.Value != nil || tv.Type == nil {
		return
	}
	t := tv.Type
	if types.IsInterface(t) {
		return
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return
	}
	report(arg.Pos(), "interface boxing of non-pointer value (allocates)")
}

// closureCaptures reports whether the literal references any variable
// declared outside it — the condition under which creating the closure
// allocates (a captureless closure compiles to a static function value).
func closureCaptures(info *types.Info, lit *ast.FuncLit) bool {
	captures := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true // package-level: not a capture
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captures = true
			return false
		}
		return true
	})
	return captures
}

// calleeSignature resolves the signature a call is checked against, for both
// static and interface-dispatched calls.
func calleeSignature(info *types.Info, fun ast.Expr) *types.Signature {
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			sig, _ := s.Obj().Type().(*types.Signature)
			return sig
		}
	}
	if tv, ok := info.Types[fun]; ok && tv.Type != nil {
		sig, _ := tv.Type.Underlying().(*types.Signature)
		return sig
	}
	return nil
}

// paramAt returns the type of parameter i, unrolling the variadic tail.
func paramAt(sig *types.Signature, i int) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		if s, ok := sig.Params().At(n - 1).Type().(*types.Slice); ok {
			return s.Elem()
		}
		return nil
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i).Type()
}

// isString reports whether t's underlying type is string.
func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
