package lint

import (
	"go/ast"
	"go/types"
)

// CtxPollScope limits ctxpoll to the audit engine: that is where
// data-dependent loops iterate over region/pair counts that scale with the
// dataset, and where Config's cancellation contract lives. Tests override
// with nil (every package in scope).
var CtxPollScope = []string{"internal/core"}

// CtxPoll requires cancellation to stay responsive in the audit engine: in
// any function with a context.Context in scope, a loop whose trip count is
// data-dependent (a region or pair count, not a constant) and whose body may
// reach a //lint:hotpath kernel entry — directly or through local closures
// it references — must mention ctx somewhere in that body (the ctx.Err()
// poll-every-N-iterations idiom). Bookkeeping loops that never reach the
// kernel are exempt: forcing polls into commit/assembly loops that must
// complete atomically would be wrong, not just noisy.
var CtxPoll = &Analyzer{
	Name: "ctxpoll",
	Doc: "require data-dependent loops that reach //lint:hotpath kernels to poll ctx " +
		"within a bounded stride (suppress with //lint:ctxpoll-ok)",
	Run: runCtxPoll,
}

const ctxPollOkDirective = "lint:ctxpoll-ok"

func runCtxPoll(pass *Pass) error {
	if !pathInScope(pass.Pkg.Path(), CtxPollScope) {
		return nil
	}
	for _, file := range pass.Files {
		allowed := directiveLines(pass.Fset, file, ctxPollOkDirective)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			fi := pass.Prog.Func(pass.Info.Defs[fn.Name])
			if fi == nil {
				continue
			}
			if !mentionsCtx(pass, fn.Body) && !hasCtxParam(pass, fn) {
				continue // no context in scope: nothing to poll
			}
			closures := localClosures(pass, fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				var body *ast.BlockStmt
				switch loop := n.(type) {
				case *ast.ForStmt:
					if !forIsDataDependent(pass, loop) {
						return true
					}
					body = loop.Body
				case *ast.RangeStmt:
					if pass.Info.Types[loop.X].Value != nil {
						return true // range over a constant: bounded
					}
					body = loop.Body
				default:
					return true
				}
				if allowed[pass.Fset.Position(n.Pos()).Line] {
					return true
				}
				bodies := []*ast.BlockStmt{body}
				bodies = append(bodies, referencedClosures(pass, body, closures)...)
				if !reachesHotPath(pass, bodies) {
					return true
				}
				for _, b := range bodies {
					if mentionsCtx(pass, b) {
						return true
					}
				}
				pass.Reportf(n.Pos(), "data-dependent loop reaches a //lint:hotpath kernel without polling ctx; check ctx.Err() within a bounded stride or mark //lint:ctxpoll-ok")
				return true
			})
		}
	}
	return nil
}

// forIsDataDependent reports whether the loop's trip count depends on
// runtime data: an infinite loop, or a condition mentioning any non-constant
// value other than the variables the loop's own Init defines.
func forIsDataDependent(pass *Pass, loop *ast.ForStmt) bool {
	if loop.Cond == nil {
		return true
	}
	initVars := map[types.Object]bool{}
	if assign, ok := loop.Init.(*ast.AssignStmt); ok {
		for _, lhs := range assign.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := pass.Info.ObjectOf(id); obj != nil {
					initVars[obj] = true
				}
			}
		}
	}
	dependent := false
	ast.Inspect(loop.Cond, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			obj := pass.Info.ObjectOf(n)
			if v, ok := obj.(*types.Var); ok && !initVars[v] {
				if tv, ok := pass.Info.Types[n]; !ok || tv.Value == nil {
					dependent = true
				}
			}
		case *ast.SelectorExpr, *ast.CallExpr, *ast.IndexExpr:
			dependent = true
			return false
		}
		return !dependent
	})
	return dependent
}

// localClosures maps function-typed local variables to the literals bound to
// them, so `visit := func(...) {...}` referenced inside a loop contributes
// its body to the loop's poll/reach checks.
func localClosures(pass *Pass, body *ast.BlockStmt) map[types.Object]*ast.FuncLit {
	out := map[types.Object]*ast.FuncLit{}
	record := func(name *ast.Ident, rhs ast.Expr) {
		if lit, ok := rhs.(*ast.FuncLit); ok {
			if obj := pass.Info.ObjectOf(name); obj != nil {
				out[obj] = lit
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						record(id, n.Rhs[i])
					}
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					record(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return out
}

// referencedClosures returns the bodies of local closures whose names appear
// inside the loop body (called directly or passed as callbacks).
func referencedClosures(pass *Pass, body *ast.BlockStmt, closures map[types.Object]*ast.FuncLit) []*ast.BlockStmt {
	if len(closures) == 0 {
		return nil
	}
	seen := map[*ast.FuncLit]bool{}
	var out []*ast.BlockStmt
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if lit, ok := closures[pass.Info.ObjectOf(id)]; ok && !seen[lit] {
			seen[lit] = true
			out = append(out, lit.Body)
		}
		return true
	})
	return out
}

// reachesHotPath reports whether any call in the bodies may transitively
// invoke a //lint:hotpath entry point.
func reachesHotPath(pass *Pass, bodies []*ast.BlockStmt) bool {
	pkg := pkgOf(pass)
	if pkg == nil {
		return false
	}
	found := false
	for _, b := range bodies {
		ast.Inspect(b, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return !found
			}
			for _, target := range pass.Prog.Callees(pkg, call) {
				if pass.Prog.MayReachHot(target) {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// mentionsCtx reports whether the node references any context.Context-typed
// identifier.
func mentionsCtx(pass *Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Info.ObjectOf(id); obj != nil && isContextType(obj.Type()) {
				found = true
			}
		}
		return !found
	})
	return found
}

// hasCtxParam reports whether the declaration takes a context.Context.
func hasCtxParam(pass *Pass, fn *ast.FuncDecl) bool {
	if fn.Type.Params == nil {
		return false
	}
	for _, f := range fn.Type.Params.List {
		if isContextType(pass.Info.Types[f.Type].Type) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// pkgOf recovers the loader Package for the pass (Prog indexes by *Package;
// passes carry the types.Package).
func pkgOf(pass *Pass) *Package {
	for _, pkg := range pass.Prog.Pkgs {
		if pkg.Types == pass.Pkg {
			return pkg
		}
	}
	return nil
}
