package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file implements the backward taint slice seedtaint evaluates over RNG
// seed expressions. The lattice is two-point (clean, tainted-with-reason);
// the transfer is a recursive walk over the expression's data dependencies:
// local variables chase their bindings, calls to functions inside the
// program consult a memoized result-taint summary, and function parameters
// are reported to the caller so seedtaint can propagate "this parameter
// flows into a seed" summaries across the callgraph.
//
// Soundness caveats (documented in DESIGN.md): struct field reads are
// treated as clean (taint does not flow through the heap), and values
// produced by unresolved non-source calls are clean if their arguments are.
// Both keep the analysis precise on the repo's seed-plumbing idiom —
// Config.Seed fields, pairSeed/nullCacheSeed derivations — while still
// catching direct and transitive wall-clock, global-state, and
// iteration-order flows.

// taintSourcePkgs are the import paths whose call results are inherently
// nondeterministic (or environment-dependent) and must never flow into an
// RNG seed.
var taintSourcePkgs = map[string]string{
	"time":         "wall clock",
	"os":           "process environment",
	"math/rand":    "global math/rand",
	"math/rand/v2": "global math/rand",
	"crypto/rand":  "crypto/rand",
	"runtime":      "runtime state",
}

// taintEval evaluates seed expressions in the context of one Program. It is
// built once per Run (via Program.data) and shared by every seedtaint pass.
type taintEval struct {
	prog *Program
	// resultMemo caches per-function result-taint verdicts; the in-progress
	// sentinel (present with tainted=false) breaks recursion cycles.
	resultMemo map[string]taintVerdict
}

type taintVerdict struct {
	tainted bool
	reason  string
}

func newTaintEval(prog *Program) *taintEval {
	return &taintEval{prog: prog, resultMemo: map[string]taintVerdict{}}
}

// eval reports whether expr (in function fi) may derive from a taint source.
// Parameters of fi that the value derives from are accumulated into params
// (when non-nil); they are clean locally and become the caller's problem via
// seed-sink summaries.
func (te *taintEval) eval(fi *FuncInfo, expr ast.Expr, params map[*types.Var]bool) taintVerdict {
	return te.evalExpr(fi, expr, params, map[types.Object]bool{})
}

func (te *taintEval) evalExpr(fi *FuncInfo, expr ast.Expr, params map[*types.Var]bool, visited map[types.Object]bool) taintVerdict {
	if expr == nil {
		return taintVerdict{}
	}
	info := fi.Pkg.Info
	// Constant-valued expressions are clean by construction.
	if tv, ok := info.Types[expr]; ok && tv.Value != nil {
		return taintVerdict{}
	}
	switch e := expr.(type) {
	case *ast.Ident:
		return te.evalObject(fi, info.ObjectOf(e), params, visited)

	case *ast.SelectorExpr:
		if _, ok := info.Selections[e]; ok {
			// Field reads are clean by design (taint does not flow through
			// the heap — Config.Seed is exactly such a read); method values
			// are clean until called.
			return taintVerdict{}
		}
		// Qualified identifier pkg.Name: same object rules as a bare ident,
		// so package-level vars in other packages are still tainted.
		return te.evalObject(fi, info.ObjectOf(e.Sel), params, visited)

	case *ast.CallExpr:
		return te.evalCall(fi, e, params, visited)

	case *ast.BinaryExpr:
		if v := te.evalExpr(fi, e.X, params, visited); v.tainted {
			return v
		}
		return te.evalExpr(fi, e.Y, params, visited)

	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			return taintVerdict{true, "channel receive order"}
		}
		return te.evalExpr(fi, e.X, params, visited)

	case *ast.ParenExpr:
		return te.evalExpr(fi, e.X, params, visited)
	case *ast.StarExpr:
		return te.evalExpr(fi, e.X, params, visited)
	case *ast.TypeAssertExpr:
		return te.evalExpr(fi, e.X, params, visited)
	case *ast.IndexExpr:
		return te.evalExpr(fi, e.X, params, visited)
	}
	// Composite literals, func literals, and anything unmodeled: clean.
	return taintVerdict{}
}

// evalObject resolves taint through a named object: constants are clean,
// package-level variables are tainted (mutable ambient state), parameters
// are recorded for interprocedural propagation, and locals chase their
// bindings.
func (te *taintEval) evalObject(fi *FuncInfo, obj types.Object, params map[*types.Var]bool, visited map[types.Object]bool) taintVerdict {
	v, ok := obj.(*types.Var)
	if !ok || obj == nil {
		return taintVerdict{} // consts, funcs, package names, nil
	}
	if v.IsField() {
		return taintVerdict{}
	}
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return taintVerdict{true, "package-level mutable state " + v.Name()}
	}
	if isParamOf(fi, v) {
		if params != nil {
			params[v] = true
		}
		return taintVerdict{}
	}
	if visited[v] {
		return taintVerdict{}
	}
	visited[v] = true
	for _, binding := range localBindings(fi, v) {
		switch b := binding.(type) {
		case bindExpr:
			if verdict := te.evalExpr(fi, b.expr, params, visited); verdict.tainted {
				return verdict
			}
		case bindMapRange:
			return taintVerdict{true, "map iteration order"}
		case bindChanRange:
			return taintVerdict{true, "channel receive order"}
		}
	}
	return taintVerdict{}
}

func (te *taintEval) evalCall(fi *FuncInfo, call *ast.CallExpr, params map[*types.Var]bool, visited map[types.Object]bool) taintVerdict {
	info := fi.Pkg.Info
	// Type conversion: taint of the operand.
	if tv, ok := info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return te.evalExpr(fi, call.Args[0], params, visited)
		}
		return taintVerdict{}
	}
	// Methods on stats.RNG (Uint64, Split, ...) produce values from an
	// already-disciplined stream; deriving a child seed from them is the
	// blessed Split idiom.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal && s.Recv() != nil && isStatsRNG(s.Recv()) {
			return taintVerdict{}
		}
	}
	if obj := calleeObjectInfo(info, call); obj != nil && obj.Pkg() != nil {
		if reason, bad := taintSourcePkgs[obj.Pkg().Path()]; bad {
			return taintVerdict{true, reason + " (" + obj.Pkg().Path() + "." + obj.Name() + ")"}
		}
	}
	// Arguments first: a tainted argument taints the result regardless of
	// what the callee does with it (conservative).
	for _, arg := range call.Args {
		if verdict := te.evalExpr(fi, arg, params, visited); verdict.tainted {
			return verdict
		}
	}
	// Calls resolved inside the program: consult the memoized result-taint
	// summary so `NewRNG(badHelper())` is caught even with clean arguments.
	for _, callee := range te.prog.Callees(fi.Pkg, call) {
		if verdict := te.resultTaint(callee); verdict.tainted {
			return taintVerdict{true, verdict.reason + " (via " + callee.Name() + ")"}
		}
	}
	return taintVerdict{}
}

// resultTaint reports whether a function's return values may derive from a
// taint source independent of its arguments (parameters are treated as clean
// here; argument taint is handled at each call site).
func (te *taintEval) resultTaint(fi *FuncInfo) taintVerdict {
	if v, ok := te.resultMemo[fi.Key]; ok {
		return v
	}
	te.resultMemo[fi.Key] = taintVerdict{} // in-progress sentinel breaks cycles
	verdict := taintVerdict{}
	for _, ret := range returnStmts(fi.Decl.Body) {
		for _, res := range ret.Results {
			if v := te.evalExpr(fi, res, nil, map[types.Object]bool{}); v.tainted {
				verdict = v
				break
			}
		}
		if verdict.tainted {
			break
		}
	}
	te.resultMemo[fi.Key] = verdict
	return verdict
}

// returnStmts collects the function's own return statements, not those of
// nested function literals.
func returnStmts(body *ast.BlockStmt) []*ast.ReturnStmt {
	var out []*ast.ReturnStmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			out = append(out, n)
		}
		return true
	})
	return out
}

// isParamOf reports whether v is a declared parameter (or receiver) of fi.
func isParamOf(fi *FuncInfo, v *types.Var) bool {
	info := fi.Pkg.Info
	match := false
	check := func(fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, f := range fields.List {
			for _, name := range f.Names {
				if info.Defs[name] == v {
					match = true
				}
			}
		}
	}
	check(fi.Decl.Recv)
	check(fi.Decl.Type.Params)
	return match
}

// A localBinding is one way a local variable acquires a value.
type localBinding interface{ binding() }

type bindExpr struct{ expr ast.Expr }
type bindMapRange struct{}
type bindChanRange struct{}

func (bindExpr) binding()      {}
func (bindMapRange) binding()  {}
func (bindChanRange) binding() {}

// localBindings finds every assignment, declaration, and range clause that
// binds v inside fi's body (closures included — the search is lexical).
func localBindings(fi *FuncInfo, v *types.Var) []localBinding {
	info := fi.Pkg.Info
	var out []localBinding
	isV := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && info.ObjectOf(id) == v
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if !isV(lhs) {
					continue
				}
				if len(n.Lhs) == len(n.Rhs) {
					out = append(out, bindExpr{n.Rhs[i]})
				} else if len(n.Rhs) == 1 {
					// Tuple assignment from a call/map-read/type-assert:
					// taint of the whole right-hand side.
					out = append(out, bindExpr{n.Rhs[0]})
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if info.Defs[name] != v {
					continue
				}
				if len(n.Values) == len(n.Names) {
					out = append(out, bindExpr{n.Values[i]})
				} else if len(n.Values) == 1 {
					out = append(out, bindExpr{n.Values[0]})
				}
			}
		case *ast.RangeStmt:
			if (n.Key != nil && isV(n.Key)) || (n.Value != nil && isV(n.Value)) {
				t := info.Types[n.X].Type
				if t != nil {
					switch t.Underlying().(type) {
					case *types.Map:
						out = append(out, bindMapRange{})
					case *types.Chan:
						out = append(out, bindChanRange{})
					default:
						out = append(out, bindExpr{n.X})
					}
				}
			}
		}
		return true
	})
	return out
}

// calleeObjectInfo is calleeObject without a Pass (dataflow runs outside any
// single pass's package).
func calleeObjectInfo(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.ObjectOf(fun)
	case *ast.SelectorExpr:
		return info.ObjectOf(fun.Sel)
	}
	return nil
}
