package lint_test

import (
	"os/exec"
	"strings"
	"testing"

	"lcsf/internal/lint"
)

// moduleRoot asks the go command for the module directory so the smoke tests
// work from any package working directory.
func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("resolving module root: %v", err)
	}
	return strings.TrimSpace(string(out))
}

// TestRepoLintClean runs the full analyzer suite over the real repository
// through the library API: the tree must stay free of diagnostics and type
// errors. This is the backstop that makes the analyzers' invariants stick —
// a PR reintroducing a wall-clock read or a shared RNG stream fails here
// (and in make lint) rather than in a flaky determinism test.
func TestRepoLintClean(t *testing.T) {
	root := moduleRoot(t)
	pkgs, err := lint.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading repo packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded zero packages")
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("type error in %s: %v", pkg.Path, terr)
		}
	}
	diags, err := lint.Run(pkgs, lint.All())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("repo not lint-clean: %s", d)
	}
}

// TestHotPathAllocAgreesWithZeroAllocTest cross-validates the static
// zero-alloc contract against the runtime one: the kernel entry points that
// TestAuditPairKernelZeroAlloc measures with testing.AllocsPerRun must be
// annotated //lint:hotpath (so hotpathalloc walks them), and the analyzer
// must agree with the measurement — zero findings anywhere in their
// reachable call trees.
func TestHotPathAllocAgreesWithZeroAllocTest(t *testing.T) {
	root := moduleRoot(t)
	pkgs, err := lint.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading repo packages: %v", err)
	}
	prog := lint.NewProgram(pkgs)
	hot := map[string]bool{}
	for _, fi := range prog.HotEntries() {
		hot[fi.Key] = true
	}
	// The kernel path exercised by TestAuditPairKernelZeroAlloc.
	for _, key := range []string{
		"lcsf/internal/core.(auditRunner).auditPair",
		"lcsf/internal/core.(auditRunner).fastAuditPair",
		"lcsf/internal/core.(auditRunner).pairPValue",
		"lcsf/internal/core.(auditRunner).summaryReject",
		"lcsf/internal/stats.PairMonteCarloP",
		"lcsf/internal/stats.AdaptivePairMonteCarloPStats",
		"lcsf/internal/stats.(PairNullCache).PValue",
		"lcsf/internal/stats.(FrozenNullCache).PValue",
		"lcsf/internal/stats.CrossBoundsCoarse",
		"lcsf/internal/obs.(ShardedCounter).Add",
	} {
		if !hot[key] {
			t.Errorf("kernel function %s is not annotated //lint:hotpath; the static and runtime zero-alloc contracts have diverged", key)
		}
	}
	diags, err := lint.Run(pkgs, []*lint.Analyzer{lint.HotPathAlloc})
	if err != nil {
		t.Fatalf("running hotpathalloc: %v", err)
	}
	for _, d := range diags {
		t.Errorf("hotpathalloc disagrees with TestAuditPairKernelZeroAlloc: %s", d)
	}
}

// TestMulticheckerBinaryCleanOnRepo exercises the actual cmd/lcsf-lint
// binary end to end (flag parsing, loading, reporting, exit status) against
// the repository.
func TestMulticheckerBinaryCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("building the multichecker binary is not short")
	}
	root := moduleRoot(t)
	cmd := exec.Command("go", "run", "./cmd/lcsf-lint", "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("lcsf-lint ./... failed: %v\n%s", err, out)
	}
	if got := strings.TrimSpace(string(out)); got != "" {
		t.Errorf("expected no output from a clean tree, got:\n%s", got)
	}
}

// TestMulticheckerListsAnalyzers checks the -list mode names every analyzer.
func TestMulticheckerListsAnalyzers(t *testing.T) {
	if testing.Short() {
		t.Skip("building the multichecker binary is not short")
	}
	root := moduleRoot(t)
	cmd := exec.Command("go", "run", "./cmd/lcsf-lint", "-list")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("lcsf-lint -list failed: %v\n%s", err, out)
	}
	for _, a := range lint.All() {
		if !strings.Contains(string(out), a.Name) {
			t.Errorf("-list output missing analyzer %s:\n%s", a.Name, out)
		}
	}
}
