// Package lint is a small, dependency-free static-analysis framework plus
// the project-specific analyzers that keep the LC-SF audit honest. The
// paper's Monte-Carlo calibration is only trustworthy if audits are
// bit-reproducible, so the invariants that tests assert (no wall-clock or
// global-RNG reads in hot paths, no shared RNG streams across goroutines, no
// exact float comparisons, nil-safe observability, checked errors) are also
// enforced here as compiler-adjacent checks.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis —
// Analyzer, Pass, Diagnostic — but is built entirely on the standard library
// (go/ast, go/types, and the go command) so the module carries no external
// dependencies. Packages are enumerated with `go list -json` and typechecked
// against compiler export data obtained from `go list -export`, which keeps a
// full-repo lint run fast and fully offline.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one invariant check. It is the stdlib-only analogue
// of analysis.Analyzer: Run inspects a single typechecked package through its
// Pass and reports findings with Pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in the multichecker's
	// -checks flag. By convention it is a single lowercase word.
	Name string
	// Doc is a one-paragraph description, shown by `lcsf-lint -list`.
	Doc string
	// Run performs the analysis. It may return an error for operational
	// failures (not for findings — those go through Pass.Reportf).
	Run func(*Pass) error
}

// A Pass provides one analyzer with one package's syntax and types.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed non-test Go files, comments included.
	Files []*ast.File
	// Pkg is the typechecked package; Pkg.Path is the import path the
	// package was checked under.
	Pkg *types.Package
	// Info holds the typechecker's expression types, object uses and
	// definitions, and selections for the package.
	Info *types.Info
	// Prog is the whole-program view over every package in this Run
	// invocation; interprocedural analyzers (hotpathalloc, seedtaint,
	// ctxpoll) resolve calls and reachability through it.
	Prog *Program

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Check:    p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer,
	})
}

// A Diagnostic is one finding, positioned in the original source.
type Diagnostic struct {
	Check    string         // analyzer name
	Pos      token.Position // resolved file:line:col
	Message  string
	Analyzer *Analyzer
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Check, d.Message)
}

// Run applies each analyzer to each package and returns every diagnostic,
// sorted by file, line, column, then analyzer name so output is stable across
// runs regardless of map or goroutine ordering anywhere upstream.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	prog := NewProgram(pkgs)
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Prog:     prog,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: analyzer %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return diags, nil
}

// All returns the full analyzer suite in a stable order: the five
// syntax/types-level analyzers from PR 2, then the four dataflow analyzers
// built on the CFG + callgraph layer.
func All() []*Analyzer {
	return []*Analyzer{
		NoDeterminism,
		RNGDiscipline,
		FloatEq,
		NilSafeObs,
		ErrCheck,
		HotPathAlloc,
		SeedTaint,
		LockSafe,
		CtxPoll,
	}
}
