package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// NoDeterminismScope lists the import-path substrings that mark a package as
// a determinism-critical hot path. Audits must be bit-reproducible in
// (input, Config), so the core engine and the statistical machinery may not
// read wall clocks or ambient randomness; internal/verify is in scope
// because its scenario generators and metamorphic oracles certify exactly
// that reproducibility and must themselves derive everything from explicit
// seeds; internal/partition is in scope because the delta layer's canonical
// sampling and dirty-set bookkeeping (hash-priority bottom-k, sorted stale
// refresh) underpin the delta-equals-batch byte-identity contract. Tests may
// override this (nil means every package is in scope).
var NoDeterminismScope = []string{"internal/core", "internal/stats", "internal/verify", "internal/partition"}

// NoDeterminismAllowlist names functions (as "pkgpath.Func" or
// "pkgpath.(Type).Method") permitted to read the wall clock — e.g. a timing
// wrapper that feeds only observability, never results. It is deliberately
// empty: internal/core injects time through Config.Clock instead, and the
// allowlist existing (but staying empty) keeps the escape hatch visible.
var NoDeterminismAllowlist = map[string]bool{}

// NoDeterminism forbids nondeterminism sources in hot-path packages:
//
//   - importing math/rand or math/rand/v2 (global, seed-racy streams — use
//     stats.RNG, which is deterministic in its seed);
//   - calling time.Now or time.Since outside an allowlisted wrapper;
//   - appending to a slice while ranging over a map with no subsequent sort
//     in the same function (map iteration order would leak into results).
var NoDeterminism = &Analyzer{
	Name: "nodeterminism",
	Doc: "forbid global math/rand, wall-clock reads, and unsorted map-order appends " +
		"in determinism-critical packages (internal/core, internal/stats, internal/verify, internal/partition)",
	Run: runNoDeterminism,
}

func runNoDeterminism(pass *Pass) error {
	if !pathInScope(pass.Pkg.Path(), NoDeterminismScope) {
		return nil
	}
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s in determinism-critical package; use stats.RNG seeded from Config.Seed", path)
			}
		}
	}
	walkFunctions(pass, func(name string, body *ast.BlockStmt) {
		allowed := NoDeterminismAllowlist[pass.Pkg.Path()+"."+name]
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if obj := calleeObject(pass, n); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "time" {
					if (obj.Name() == "Now" || obj.Name() == "Since") && !allowed {
						pass.Reportf(n.Pos(), "wall-clock read time.%s in determinism-critical package; inject a clock (e.g. core.Config.Clock) or allowlist a timing wrapper", obj.Name())
					}
				}
			case *ast.RangeStmt:
				checkMapOrderAppend(pass, n, body)
			}
			return true
		})
	})
	return nil
}

// checkMapOrderAppend flags `for k := range m { s = append(s, ...) }` where m
// is a map and s is declared outside the loop, unless the enclosing function
// later sorts s. Such appends bake map iteration order — which Go randomizes
// — into the slice. Tuple assignments are checked position by position, so
// `s, t = append(s, k), append(t, v)` flags both slices.
func checkMapOrderAppend(pass *Pass, rng *ast.RangeStmt, fnBody *ast.BlockStmt) {
	t := pass.Info.Types[rng.X].Type
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		// Only aligned assignments pair Lhs[i] with Rhs[i]; the unaligned
		// forms (`v, ok = m[k]` and friends) cannot be appends.
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			if fun, ok := call.Fun.(*ast.Ident); !ok || fun.Name != "append" {
				continue
			}
			target, ok := assign.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.Info.ObjectOf(target)
			if obj == nil || obj.Name() == "_" {
				continue
			}
			// Appending to a loop-local slice is fine; the hazard is a slice
			// that outlives the map iteration.
			if rng.Pos() <= obj.Pos() && obj.Pos() <= rng.End() {
				continue
			}
			if !sortedAfter(pass, fnBody, obj, rng.End()) {
				pass.Reportf(assign.Pos(), "append to %s in map iteration order without a subsequent sort; iterate sorted keys or sort %s before use", obj.Name(), obj.Name())
			}
		}
		return true
	})
}

// sortedAfter reports whether fn contains, after pos, a call into sort or
// slices that mentions obj (sort.Slice(s, ...), slices.Sort(s), sort.Ints(s),
// s-referencing comparator closures included).
func sortedAfter(pass *Pass, fn *ast.BlockStmt, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgIdent, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if pkgObj, isPkg := pass.Info.ObjectOf(pkgIdent).(*types.PkgName); !isPkg ||
			(pkgObj.Imported().Path() != "sort" && pkgObj.Imported().Path() != "slices") {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && pass.Info.ObjectOf(id) == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// pathInScope reports whether pkgPath matches any scope substring; a nil
// scope means everything is in scope (used by fixture tests).
func pathInScope(pkgPath string, scope []string) bool {
	if scope == nil {
		return true
	}
	for _, s := range scope {
		if strings.Contains(pkgPath, s) {
			return true
		}
	}
	return false
}

// walkFunctions visits every function and method body in the package with a
// printable name ("Func", "(Type).Method", or "Func.func1" for literals
// nested in Func).
func walkFunctions(pass *Pass, visit func(name string, body *ast.BlockStmt)) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			visit(funcDeclName(fn), fn.Body)
		}
	}
}

// funcDeclName renders a FuncDecl's allowlist key: "Func" or "(Type).Method".
func funcDeclName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return "(" + id.Name + ")." + fn.Name.Name
	}
	return fn.Name.Name
}

// calleeObject resolves the object a call's function expression names, or nil
// for dynamic calls, builtins, and type conversions.
func calleeObject(pass *Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.Info.ObjectOf(fun)
	case *ast.SelectorExpr:
		return pass.Info.ObjectOf(fun.Sel)
	}
	return nil
}
