package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Internal tests for the loader's failure modes: malformed `go list` output,
// unparsable and untypeable fixture directories, and the package-skipping
// rules (test-only, vendored, and underscore-prefixed directories must never
// reach the analyzers).

func TestDecodeGoList(t *testing.T) {
	// go list -json emits concatenated objects, not an array.
	stream := `{"Dir": "/a", "ImportPath": "m/a", "Name": "a", "GoFiles": ["a.go"]}
{"Dir": "/b", "ImportPath": "m/b", "Name": "b"}`
	pkgs, err := decodeGoList(strings.NewReader(stream))
	if err != nil {
		t.Fatalf("decodeGoList: %v", err)
	}
	if len(pkgs) != 2 || pkgs[0].ImportPath != "m/a" || pkgs[1].ImportPath != "m/b" {
		t.Fatalf("bad decode: %+v", pkgs)
	}
	if len(pkgs[0].GoFiles) != 1 || pkgs[0].GoFiles[0] != "a.go" {
		t.Errorf("GoFiles not decoded: %+v", pkgs[0])
	}
}

func TestDecodeGoListMalformed(t *testing.T) {
	cases := []string{
		`{"Dir": "/a"` + "\n",    // truncated object
		`{"Dir": "/a"} not-json`, // trailing garbage
		`[{"Dir": "/a"}]`,        // array wrapper (not the go list format)
	}
	for _, stream := range cases {
		if _, err := decodeGoList(strings.NewReader(stream)); err == nil {
			t.Errorf("decodeGoList(%q) succeeded, want error", stream)
		} else if !strings.Contains(err.Error(), "decoding go list output") {
			t.Errorf("decodeGoList(%q) error lacks context: %v", stream, err)
		}
	}
}

func TestDecodeGoListEmpty(t *testing.T) {
	pkgs, err := decodeGoList(strings.NewReader(""))
	if err != nil || len(pkgs) != 0 {
		t.Fatalf("empty stream: pkgs=%v err=%v", pkgs, err)
	}
}

func TestLoadBadPattern(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module tmpload\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, "./nosuchdir"); err == nil {
		t.Fatal("Load with a bad pattern succeeded, want error")
	} else if !strings.Contains(err.Error(), "go list") {
		t.Errorf("error lacks go list context: %v", err)
	}
}

// TestLoadSkipsNonSourcePackages lays out a module where only one directory
// holds buildable production code: a test-only package, a vendored tree, and
// an underscore-prefixed directory (with a deliberately unparsable file, to
// prove it is never opened) must all be excluded.
func TestLoadSkipsNonSourcePackages(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"go.mod":              "module tmpload\n\ngo 1.22\n",
		"real/real.go":        "package real\n\nfunc Real() int { return 1 }\n",
		"onlytest/x_test.go":  "package onlytest\n\nimport \"testing\"\n\nfunc TestX(t *testing.T) {}\n",
		"vendor/dep/dep.go":   "package dep\n\nfunc Dep() {}\n",
		"_skipped/broken.go":  "package this is not Go at all {{{\n",
		"testdata/fixture.go": "package also not parseable ((\n",
	}
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pkgs, err := Load(dir, "./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "tmpload/real" {
		paths := make([]string, 0, len(pkgs))
		for _, p := range pkgs {
			paths = append(paths, p.Path)
		}
		t.Fatalf("Load returned %v, want exactly [tmpload/real]", paths)
	}
	if len(pkgs[0].TypeErrors) != 0 {
		t.Errorf("unexpected type errors: %v", pkgs[0].TypeErrors)
	}
}

func TestCheckDirMissing(t *testing.T) {
	if _, err := CheckDir(filepath.Join(t.TempDir(), "nope"), "x/y"); err == nil {
		t.Fatal("CheckDir on a missing directory succeeded, want error")
	}
}

func TestCheckDirNoGoFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README.md"), []byte("not go"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := CheckDir(dir, "x/y"); err == nil {
		t.Fatal("CheckDir with no Go files succeeded, want error")
	} else if !strings.Contains(err.Error(), "no Go files") {
		t.Errorf("error lacks context: %v", err)
	}
}

func TestCheckDirParseError(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte("package x\n\nfunc {broken\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := CheckDir(dir, "x/y"); err == nil {
		t.Fatal("CheckDir on an unparsable file succeeded, want error")
	} else if !strings.Contains(err.Error(), "parsing") {
		t.Errorf("error lacks context: %v", err)
	}
}

// TestCheckDirMissingImportIsSoft pins the soft-error contract: a fixture
// importing a package with no resolvable export data still typechecks (the
// analyzers run on the partial package), with the failure surfaced through
// TypeErrors rather than an error return.
func TestCheckDirMissingImportIsSoft(t *testing.T) {
	dir := t.TempDir()
	src := "package x\n\nimport \"no/such/pkg\"\n\nvar _ = pkg.Thing\n"
	if err := os.WriteFile(filepath.Join(dir, "x.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := CheckDir(dir, "x/y")
	if err != nil {
		t.Fatalf("CheckDir returned a hard error for a missing import: %v", err)
	}
	if len(pkg.TypeErrors) == 0 {
		t.Error("missing export data produced no TypeErrors")
	}
	if len(pkg.Files) != 1 {
		t.Errorf("partial package lost its files: %d", len(pkg.Files))
	}
}
