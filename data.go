package lcsf

import (
	"lcsf/internal/census"
	"lcsf/internal/hmda"
	"lcsf/internal/poi"
)

// The synthetic data layer, exposed so downstream users (and the examples)
// can reproduce the paper's experiment universe or build their own. Real
// deployments would load their own observations instead; the audit only
// needs []Observation.

// CensusModel is a synthetic US census-tract model with spatially-correlated
// income and minority-share fields.
type CensusModel = census.Model

// CensusConfig controls census generation.
type CensusConfig = census.Config

// GenerateCensus builds a deterministic synthetic census model.
func GenerateCensus(cfg CensusConfig) *CensusModel { return census.Generate(cfg) }

// Lender configures one synthetic mortgage lender (volume, planted bias,
// seed).
type Lender = hmda.Lender

// MortgageRecord is one synthetic loan application.
type MortgageRecord = hmda.Record

// DefaultLenders returns the paper's four lenders with volumes matching
// Section 4.1.2.
func DefaultLenders() []Lender { return hmda.DefaultLenders() }

// GenerateMortgages produces the synthetic Loan Application Register of one
// lender over a census model.
func GenerateMortgages(m *CensusModel, l Lender) []MortgageRecord { return hmda.Generate(m, l) }

// MortgageObservations converts decisioned mortgage records to audit
// observations (positive = approved, protected = minority, income as the
// non-protected attribute).
func MortgageObservations(records []MortgageRecord) []Observation {
	return hmda.ToObservations(records)
}

// POIConfig controls point-of-interest generation for the food-access use
// case.
type POIConfig = poi.Config

// Place is one synthetic point of interest (fast-food outlet or grocery).
type Place = poi.Place

// GeneratePlaces produces the synthetic SafeGraph-like places dataset over a
// census model.
func GeneratePlaces(m *CensusModel, cfg POIConfig) []Place { return poi.Generate(m, cfg) }

// PlaceObservations converts places to audit observations (positive = fast
// food; the protected flag and income describe the outlet's neighborhood).
func PlaceObservations(m *CensusModel, places []Place, seed uint64) []Observation {
	return poi.ToObservations(m, places, seed)
}
