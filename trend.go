package lcsf

import (
	"lcsf/internal/core"
	"lcsf/internal/geo"
	"lcsf/internal/partition"
	"lcsf/internal/trend"
)

// Longitudinal auditing: the same decision-maker across reporting periods.

// TrendPeriod is one reporting period's observations.
type TrendPeriod = trend.Period

// TrendReport holds per-period audit summaries and the Mann–Kendall trend
// over the unfair-pair series.
type TrendReport = trend.Report

// AnalyzeTrend audits each period on the same grid and configuration and
// tests the unfair-pair series for monotone trend.
func AnalyzeTrend(grid Grid, periods []TrendPeriod, cfg Config, opts PartitionOptions) (*TrendReport, error) {
	return trend.Analyze(geo.Grid(grid), periods, core.Config(cfg), partition.Options(opts))
}
